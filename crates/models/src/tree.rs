//! CART decision tree with Gini impurity, built by a histogram-binned
//! kernel (default) or the bit-exact presorted-column kernel.
//!
//! Depth-limited binary tree over continuous features. Candidate thresholds
//! are the midpoints between consecutive distinct values (presorted) or
//! consecutive occupied bins (binned), evaluated in O(1) each via running
//! prefix sums. Feature importances accumulate the instance-weighted
//! impurity decrease per feature, normalized to sum to 1 — the same notion
//! scikit-learn exposes.
//!
//! # The histogram-binned kernels (`SplitExactness::Binned256`, default,
//! # and the wide `SplitExactness::Binned4096`)
//!
//! Each feature is quantized into at most [`MAX_BINS`] (`Binned256`) or
//! [`MAX_BINS_WIDE`] (`Binned4096`) bins *once* — per dataset when a cached
//! [`BinSet`] is bound to the workspace (see [`TreeWorkspace::bind_bins`]),
//! or once per fit otherwise — and the fit keeps the quantized columns as a
//! column-major code arena (`u8` or `u16`, see [`CodeWidth`]). A node's
//! split scan is then O(occupied bins) over per-node weight/count
//! histograms built in a single pass over the node's rows; after a split
//! only the *smaller* child's histogram is built fresh, the larger child's
//! being derived by parent-minus-sibling subtraction in place. Partitioning
//! touches a single row array instead of `d` per-feature order lists, which
//! together with the O(bins) scans is where the speedup over the presorted
//! kernel comes from. See DESIGN.md § 4i for the soundness argument and the
//! exactness conditions, and § 4k for the wide-bin/GOSS scaling story.
//!
//! **When binned ≡ presorted.** With ≤ `max_bins` distinct values per
//! column, every distinct value gets its own bin, so the candidate
//! thresholds are literally the presorted ones; if additionally the weight
//! prefix sums incur no rounding (always true for unweighted fits, and for
//! dyadic weights), the two kernels produce bit-identical trees. Beyond
//! the bin budget the binned kernels are a deliberate, deterministic
//! approximation — callers that need the exact tree opt into
//! `SplitExactness::Presorted`.
//!
//! # GOSS-style per-node subsampling ([`GossConfig`])
//!
//! At million-row scale even O(n·d) histogram builds dominate. When a
//! [`GossConfig`] is armed on the workspace (binned kernels only), each
//! node's histogram is built from a subsample: the top `top_frac` of its
//! rows by gradient proxy `w_i·|y_i − p̂_node|` are kept exactly, a
//! `rest_frac` share of the remainder is drawn by a deterministic per-node
//! hash (seeded from `(seed, node_id)` via `derive_seed`), and the sampled
//! remainder's weights are amplified by `(n_rest / n_sampled)` so the
//! split-gain estimates stay unbiased. Leaf tests, probabilities, and
//! partitions still use the node's *exact* rows and weights — only the
//! split scan is estimated. A config with `top_frac + rest_frac >= 1.0`
//! cannot drop any row (the ceil shares cover the node), so it is treated
//! as disabled and runs the identical unsampled code path bit-for-bit.
//!
//! # The presorted kernel (`SplitExactness::Presorted`)
//!
//! The classic CART bottleneck is re-sorting every feature column at every
//! node: O(nodes × d × n log n) with fresh allocations throughout. This
//! implementation sorts each feature's row order **once per fit** (a stable
//! argsort by value) and then *stably partitions* the per-feature sorted
//! index lists down to the children after each split — scikit-learn's old
//! `presort=True` strategy. Every node's split scan is then O(d × n_node)
//! with zero sorts, and all scratch (per-feature orders, partition buffers,
//! the row-ascending node sets) lives in a reusable [`TreeWorkspace`], so a
//! fit performs no per-node allocation.
//!
//! **Bit-identity contract.** The presorted kernel is bit-identical to the
//! naive per-node splitter (kept as a `#[cfg(test)]` reference below): a
//! stable sort of a row-ascending index list orders ties by row, and a
//! stable partition preserves exactly that order on both sides, so every
//! node scans values, accumulates prefix sums, compares candidate gains,
//! and computes leaf probabilities in the *identical floating-point order*
//! the naive builder would.
//!
//! # Depth truncation
//!
//! Greedy CART's split sequence is independent of `max_depth` — depth only
//! gates *stopping*. [`DecisionTree::fit_deep_in`] therefore fits once at
//! the deepest depth and annotates every node with its creation depth and
//! impurity-decrease contribution; [`DeepTree::truncate`] then derives the
//! tree for any shallower depth in O(nodes), bit-identical to a direct fit
//! at that depth (same preorder arena, same probabilities, importances
//! reconstructed from the recorded gains in the same accumulation order).
//! The HPO grid exploits this to turn 7 depth fits into 1 fit + 6
//! truncations.

use dfs_linalg::rng::derive_seed;
use dfs_linalg::sort::{stable_partition_in_place, stable_sort_indices_by_key};
use dfs_linalg::Matrix;
use std::sync::Arc;

/// Nodes stop splitting below this many instances.
const MIN_SAMPLES_SPLIT: usize = 4;

/// Maximum bins per feature for the default histogram kernel (`u8` codes).
pub const MAX_BINS: usize = 256;

/// Maximum bins per feature for the wide histogram kernel (`u16` codes).
pub const MAX_BINS_WIDE: usize = 4096;

/// Storage width of a quantized-code arena, determining the per-feature
/// bin budget (see [`CodeWidth::max_bins`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeWidth {
    /// `u8` codes, ≤ [`MAX_BINS`] bins per feature (default).
    #[default]
    U8,
    /// `u16` codes, ≤ [`MAX_BINS_WIDE`] bins per feature.
    U16,
}

impl CodeWidth {
    /// The per-feature bin budget this width can address.
    pub fn max_bins(self) -> usize {
        match self {
            CodeWidth::U8 => MAX_BINS,
            CodeWidth::U16 => MAX_BINS_WIDE,
        }
    }

    /// Code size in bits (surfaced in bench/summary provenance).
    pub fn bits(self) -> u32 {
        match self {
            CodeWidth::U8 => 8,
            CodeWidth::U16 => 16,
        }
    }
}

/// Which split kernel a [`TreeWorkspace`] runs.
///
/// `Binned256` (the default) trades exactness beyond 256 distinct values
/// per column for O(bins) split scans; `Binned4096` widens the budget to
/// 4096 bins (`u16` codes) for high-cardinality million-row features;
/// `Presorted` keeps the bit-exact reference behaviour. All modes are
/// fingerprinted apart (see [`SplitExactness::fingerprint`]) so evaluation
/// caches never mix modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitExactness {
    /// Histogram kernel over ≤256 bins per feature (default).
    #[default]
    Binned256,
    /// Wide histogram kernel over ≤4096 bins per feature (`u16` codes).
    Binned4096,
    /// Exact presorted kernel, bit-identical to the naive splitter.
    Presorted,
}

impl SplitExactness {
    /// Stable tag mixed into settings/cache fingerprints so memoized
    /// evaluations from different kernels can never collide.
    pub fn fingerprint(self) -> u64 {
        match self {
            SplitExactness::Binned256 => 0xB1A2_5601,
            SplitExactness::Binned4096 => 0xB1A2_4096,
            SplitExactness::Presorted => 0x9E50_47ED,
        }
    }

    /// Human-readable mode name (also the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            SplitExactness::Binned256 => "binned256",
            SplitExactness::Binned4096 => "binned4096",
            SplitExactness::Presorted => "presorted",
        }
    }

    /// Parses the CLI spelling; accepts `binned` as shorthand.
    pub fn parse(s: &str) -> Option<SplitExactness> {
        match s {
            "binned256" | "binned" => Some(SplitExactness::Binned256),
            "binned4096" => Some(SplitExactness::Binned4096),
            "presorted" => Some(SplitExactness::Presorted),
            _ => None,
        }
    }

    /// Code width of the histogram kernels (`None` for the presorted one).
    pub fn code_width(self) -> Option<CodeWidth> {
        match self {
            SplitExactness::Binned256 => Some(CodeWidth::U8),
            SplitExactness::Binned4096 => Some(CodeWidth::U16),
            SplitExactness::Presorted => None,
        }
    }
}

/// Default node-size floor below which GOSS passes through unsampled: tiny
/// nodes are cheap to histogram exactly and subsampling them costs more in
/// variance than it saves in work.
pub const GOSS_MIN_ROWS: usize = 256;

/// GOSS-style per-node subsampling of the binned kernels' histogram
/// builds (see the module docs for the estimator and determinism story).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossConfig {
    /// Fraction of a node's rows kept exactly, chosen by largest gradient
    /// proxy `w_i · |y_i − p̂_node|` (row-ascending tiebreak).
    pub top_frac: f64,
    /// Fraction of a node's rows drawn uniformly (deterministic per-node
    /// hash) from the remainder, reweighted by `n_rest / n_sampled`.
    pub rest_frac: f64,
    /// Root seed; each node samples with `derive_seed(seed, node_id)`.
    pub seed: u64,
    /// Nodes smaller than this build their full histogram unsampled.
    pub min_rows: usize,
}

impl GossConfig {
    /// A config with the default [`GOSS_MIN_ROWS`] floor.
    pub fn new(top_frac: f64, rest_frac: f64, seed: u64) -> GossConfig {
        GossConfig { top_frac, rest_frac, seed, min_rows: GOSS_MIN_ROWS }
    }

    /// Whether this config can drop rows at all. `top_frac + rest_frac >=
    /// 1.0` keeps every row of every node (the ceil shares cover it), so
    /// such configs run the unsampled path bit-for-bit.
    pub fn active(&self) -> bool {
        self.top_frac + self.rest_frac < 1.0
    }

    /// The fraction of rows an active config retains per sampled node
    /// (`1.0` when inactive) — surfaced in bench/summary provenance.
    pub fn kept_frac(&self) -> f64 {
        if self.active() {
            self.top_frac + self.rest_frac
        } else {
            1.0
        }
    }
}

/// Bin layout of one feature: per-bin lowest and highest source value.
///
/// Bins are derived so that a column with ≤ `max_bins` distinct values
/// gets exactly one bin per distinct value (`lo == hi`); wider columns get
/// near-equal-count bins cut between distinct values. Candidate thresholds
/// are `0.5 * (hi[left_bin] + lo[right_bin])` at boundaries between
/// *occupied* bins, which in the one-value-per-bin case reproduces the
/// presorted kernel's `0.5 * (prev + v)` midpoints bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBins {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl FeatureBins {
    /// Derives ≤ [`MAX_BINS`] bins from an ascending-sorted column.
    #[cfg(test)]
    fn from_sorted(values: &[f64]) -> FeatureBins {
        FeatureBins::from_sorted_with(values, MAX_BINS)
    }

    /// Derives at most `max_bins` bins from an ascending-sorted column of
    /// finite values.
    fn from_sorted_with(values: &[f64], max_bins: usize) -> FeatureBins {
        let n = values.len();
        if n == 0 {
            return FeatureBins { lo: vec![0.0], hi: vec![0.0] };
        }
        let mut distinct = 0usize;
        for k in 0..n {
            if k == 0 || values[k] > values[k - 1] {
                distinct += 1;
            }
        }
        let mut lo = Vec::with_capacity(distinct.min(max_bins));
        let mut hi = Vec::with_capacity(distinct.min(max_bins));
        if distinct <= max_bins {
            for k in 0..n {
                if k == 0 || values[k] > values[k - 1] {
                    lo.push(values[k]);
                    hi.push(values[k]);
                }
            }
        } else {
            // Near-equal-count bins: each bin takes a ceil share of the
            // remaining values, extended to swallow duplicates of its last
            // value so a distinct value never straddles two bins.
            let mut start = 0usize;
            let mut emitted = 0usize;
            while start < n {
                let remaining_bins = max_bins - emitted;
                let take = (n - start).div_ceil(remaining_bins);
                let mut end = start + take;
                let vend = values[end - 1];
                while end < n && values[end] == vend {
                    end += 1;
                }
                lo.push(values[start]);
                hi.push(values[end - 1]);
                start = end;
                emitted += 1;
            }
        }
        FeatureBins { lo, hi }
    }

    /// Number of bins (1..=`max_bins` of the derivation).
    pub fn n_bins(&self) -> usize {
        self.hi.len()
    }

    /// Bin code of a value: the first bin whose highest member reaches it,
    /// clamped into range for values outside the derivation set.
    #[inline]
    fn code_of(&self, v: f64) -> u16 {
        let b = self.hi.partition_point(|&h| h < v);
        b.min(self.hi.len() - 1) as u16
    }

    /// Per-bin lowest source values (ascending).
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Per-bin highest source values (ascending).
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }
}

/// Width-tagged column-major code arena of a [`BinSet`]: the `u8` variant
/// keeps the common ≤256-bin case at half the memory of the wide one.
#[derive(Debug, Clone, PartialEq)]
enum CodeArena {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// Per-dataset bin edges and quantized codes for every feature, derived
/// once and shared across fits (arms, row caps, server requests) via
/// [`TreeWorkspace::bind_bins`] — the tree-kernel analogue of cached
/// rankings. Quantization is a pure function of the source matrix *and the
/// code width*, so a `BinSet` is freely shareable across threads behind an
/// `Arc`; callers caching derived sets must key on the width too.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSet {
    feats: Vec<FeatureBins>,
    /// Column-major `d × n_rows` quantized codes of the source matrix.
    codes: CodeArena,
    n_rows: usize,
    width: CodeWidth,
}

impl BinSet {
    /// Derives ≤ [`MAX_BINS`]-bin (`u8`) bins and codes from every column
    /// of `x`.
    ///
    /// # Panics
    /// Panics when a value is NaN (features are required to be finite).
    pub fn derive(x: &Matrix) -> BinSet {
        BinSet::derive_with(x, CodeWidth::U8)
    }

    /// Derives bins and codes from every column of `x` at the given code
    /// width (`u8` → ≤ [`MAX_BINS`] bins, `u16` → ≤ [`MAX_BINS_WIDE`]).
    ///
    /// # Panics
    /// Panics when a value is NaN (features are required to be finite).
    pub fn derive_with(x: &Matrix, width: CodeWidth) -> BinSet {
        let (n, d) = x.shape();
        let max_bins = width.max_bins();
        let mut feats = Vec::with_capacity(d);
        let mut codes = vec![0u16; d * n];
        let mut col = Vec::with_capacity(n);
        for f in 0..d {
            x.col_into(f, &mut col);
            col.sort_unstable_by(|a, b| match a.partial_cmp(b) {
                Some(ord) => ord,
                None => panic!("BinSet::derive: finite features required"),
            });
            let fb = FeatureBins::from_sorted_with(&col, max_bins);
            for (c, v) in codes[f * n..(f + 1) * n].iter_mut().zip(x.col_iter(f)) {
                *c = fb.code_of(v);
            }
            feats.push(fb);
        }
        let codes = match width {
            CodeWidth::U8 => CodeArena::U8(codes.iter().map(|&c| c as u8).collect()),
            CodeWidth::U16 => CodeArena::U16(codes),
        };
        BinSet { feats, codes, n_rows: n, width }
    }

    /// Number of features covered.
    pub fn n_features(&self) -> usize {
        self.feats.len()
    }

    /// Number of rows of the source matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The code width this set was derived at.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// The bin layout of feature `j`.
    pub fn feature(&self, j: usize) -> &FeatureBins {
        &self.feats[j]
    }

    /// The quantized code of source cell `(row, feature)`.
    #[inline]
    pub(crate) fn code_at(&self, feature: usize, row: usize) -> u16 {
        match &self.codes {
            CodeArena::U8(v) => v[feature * self.n_rows + row] as u16,
            CodeArena::U16(v) => v[feature * self.n_rows + row],
        }
    }

    /// Widening gather of source column `src`'s codes at the given source
    /// rows, written element-wise into `out` (which must match `rows` in
    /// length).
    fn gather_codes(&self, src: usize, rows: &[u32], out: &mut [u16]) {
        let n = self.n_rows;
        match &self.codes {
            CodeArena::U8(v) => {
                let src_col = &v[src * n..(src + 1) * n];
                for (c, &r) in out.iter_mut().zip(rows) {
                    *c = src_col[r as usize] as u16;
                }
            }
            CodeArena::U16(v) => {
                let src_col = &v[src * n..(src + 1) * n];
                for (c, &r) in out.iter_mut().zip(rows) {
                    *c = src_col[r as usize];
                }
            }
        }
    }
}

/// A tree node (arena storage; `usize` child links).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node carrying `P(y = 1)` among its training instances.
    Leaf {
        /// Positive-class probability at this leaf.
        proba: f64,
    },
    /// Internal test `x[feature] <= threshold` → left, else right.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child (`<=`).
        left: usize,
        /// Arena index of the right child (`>`).
        right: usize,
    },
}

/// Work counters of one kernel fit (recorded on [`TreeWorkspace`] and on
/// [`DeepTree`]); callers surface them as `tree.nodes` / `split.scans`
/// observability counters at the fit level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitStats {
    /// Nodes in the arena (leaves included).
    pub nodes: u64,
    /// Feature segments scanned for split candidates.
    pub split_scans: u64,
}

impl FitStats {
    /// Element-wise accumulation (used when summing per-tree stats).
    pub fn merge(&mut self, other: FitStats) {
        self.nodes += other.nodes;
        self.split_scans += other.split_scans;
    }

    /// Emits the fit-level `tree.nodes` / `split.scans` observability
    /// counters. Call on the fit's *caller* thread only — never inside
    /// parallel workers, which may have no collector and would make traces
    /// thread-count-dependent.
    pub fn record(&self) {
        dfs_obs::counter("tree.nodes", self.nodes);
        dfs_obs::counter("split.scans", self.split_scans);
    }
}

/// Reusable scratch for both tree kernels: per-feature sorted row orders
/// (presorted), the quantized `u8` code arena and histogram pool (binned),
/// the row-ascending node sets, partition buffers, and the unit weight
/// vector. After the first fit of a given shape, subsequent fits through
/// the same workspace allocate nothing beyond the output arena.
#[derive(Debug, Default)]
pub struct TreeWorkspace {
    /// Which kernel fits through this workspace run.
    exactness: SplitExactness,
    /// Flattened `d × n` per-feature sorted row orders (presorted kernel).
    order: Vec<u32>,
    /// Node row sets in row-ascending order, partitioned in place.
    rows: Vec<u32>,
    /// Stable-partition holding buffer.
    scratch: Vec<u32>,
    /// Column gather buffer for the presort keys / bin derivation.
    col: Vec<f64>,
    /// All-ones weights when the caller passes none.
    unit_w: Vec<f64>,
    /// Cached dataset-level bins for the binned kernel, if bound.
    bound_bins: Option<Arc<BinSet>>,
    /// Source-feature index of each training-matrix column, when bound.
    bound_cols: Vec<usize>,
    /// Source-row index of each training-matrix row, when bound.
    bound_rows: Vec<u32>,
    /// Per-node GOSS subsampling config for the binned kernels, if armed.
    goss: Option<GossConfig>,
    /// Per-fit column-major `d × n` quantized codes (binned kernels; `u16`
    /// holds both widths — the arena is per-fit, so the common-case memory
    /// win lives in the shared [`BinSet`], not here).
    codes: Vec<u16>,
    /// Flattened per-feature bin `lo` values for the current fit.
    bin_lo: Vec<f64>,
    /// Flattened per-feature bin `hi` values for the current fit.
    bin_hi: Vec<f64>,
    /// Prefix offsets into `bin_lo`/`bin_hi` (`d + 1` entries).
    bin_off: Vec<u32>,
    /// Per-node compact weight gather (binned kernel).
    w_buf: Vec<f64>,
    /// Per-node compact positive-weight gather (binned kernel).
    pos_buf: Vec<f64>,
    /// GOSS per-node (gradient proxy, row) selection buffer.
    goss_g: Vec<(f64, u32)>,
    /// GOSS per-node (row hash, row) sampling buffer.
    goss_h: Vec<(u64, u32)>,
    /// GOSS per-node sampled row list (row-ascending).
    goss_rows: Vec<u32>,
    /// Histogram buffer pool; all buffers are zeroed between uses.
    hist_pool: Vec<HistBuf>,
    /// Total bins the pool buffers are sized for.
    hist_stride: usize,
    /// Feature count the pool buffers are sized for.
    hist_d: usize,
    /// Counters of the most recent fit through this workspace.
    last_stats: FitStats,
}

impl TreeWorkspace {
    /// An empty workspace (buffers grow on first use) running the default
    /// [`SplitExactness::Binned256`] kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace running the given kernel.
    pub fn with_exactness(exactness: SplitExactness) -> Self {
        Self { exactness, ..Self::default() }
    }

    /// Switches which kernel subsequent fits run.
    pub fn set_exactness(&mut self, exactness: SplitExactness) {
        self.exactness = exactness;
    }

    /// The kernel subsequent fits run.
    pub fn exactness(&self) -> SplitExactness {
        self.exactness
    }

    /// Binds cached dataset-level bins for subsequent binned fits: column
    /// `j` of the training matrix corresponds to feature `cols[j]` of the
    /// bin set's source matrix, and row `i` to source row `rows[i]`.
    /// Quantization then becomes a pure `u8` gather instead of per-fit bin
    /// derivation — the "quantize once per dataset" fast path.
    ///
    /// The binding stays armed until rebound or cleared; callers must
    /// rebind (or [`TreeWorkspace::clear_bins`]) whenever the training
    /// matrix changes, since a stale same-shape binding cannot be detected.
    ///
    /// # Panics
    /// Panics when an index is out of range for the bin set.
    pub fn bind_bins(&mut self, bins: &Arc<BinSet>, cols: &[usize], rows: &[usize]) {
        for &c in cols {
            assert!(c < bins.n_features(), "bind_bins: column {c} out of range");
        }
        for &r in rows {
            assert!(r < bins.n_rows(), "bind_bins: row {r} out of range");
        }
        self.bound_cols.clear();
        self.bound_cols.extend_from_slice(cols);
        self.bound_rows.clear();
        self.bound_rows.extend(rows.iter().map(|&r| r as u32));
        self.bound_bins = Some(Arc::clone(bins));
    }

    /// Drops any bound bin set; subsequent binned fits derive bins from
    /// their own training matrix.
    pub fn clear_bins(&mut self) {
        self.bound_bins = None;
    }

    /// Arms (or disarms, with `None`) GOSS-style per-node subsampling for
    /// subsequent binned fits. The presorted kernel ignores it — exact
    /// fits are exact. Inactive configs (`top_frac + rest_frac >= 1.0`)
    /// run the unsampled path bit-for-bit.
    pub fn set_goss(&mut self, goss: Option<GossConfig>) {
        self.goss = goss;
    }

    /// The currently armed GOSS config, if any.
    pub fn goss(&self) -> Option<GossConfig> {
        self.goss
    }

    /// Work counters of the most recent fit through this workspace.
    pub fn last_stats(&self) -> FitStats {
        self.last_stats
    }
}

/// One pooled histogram buffer of the binned kernel: per-bin instance
/// count, weight sum, and positive-weight sum, plus per-feature occupied
/// and touched code ranges (inclusive; `(1, 0)` means empty).
///
/// Invariant: outside an `alloc`/`release` window every buffer is fully
/// zero — `release` zeroes the *touched* (`dirty`) span, which covers the
/// occupied one, so fresh builds never pay a full `MAX_BINS` reset.
#[derive(Debug, Default)]
struct HistBuf {
    cnt: Vec<u32>,
    wtot: Vec<f64>,
    wpos: Vec<f64>,
    /// Occupied code range per feature (tightened after subtraction).
    range: Vec<(u16, u16)>,
    /// Widest code range ever written this allocation (zeroing span).
    dirty: Vec<(u16, u16)>,
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    importances: Vec<f64>,
    max_depth: usize,
}

impl DecisionTree {
    /// Fits a depth-limited CART tree.
    pub fn fit(x: &Matrix, y: &[bool], max_depth: usize) -> Self {
        Self::fit_weighted(x, y, max_depth, None)
    }

    /// Fits with optional per-instance weights (used for class balancing by
    /// the random forest).
    pub fn fit_weighted(x: &Matrix, y: &[bool], max_depth: usize, weights: Option<&[f64]>) -> Self {
        let mut ws = TreeWorkspace::default();
        Self::fit_in(x, y, max_depth, weights, &mut ws)
    }

    /// [`DecisionTree::fit_weighted`] through a caller-owned workspace:
    /// repeated fits (forest trees, wrapper evaluations) reuse every
    /// buffer and perform no steady-state allocation beyond the arena.
    pub fn fit_in(
        x: &Matrix,
        y: &[bool],
        max_depth: usize,
        weights: Option<&[f64]>,
        ws: &mut TreeWorkspace,
    ) -> Self {
        let max_depth = max_depth.max(1);
        let deep = run_kernel(x, y, max_depth, weights, ws);
        let importances = deep.importances_at(max_depth);
        DecisionTree { nodes: deep.nodes, importances, max_depth }
    }

    /// Fits the full-depth tree once, annotated for O(nodes) derivation of
    /// every shallower tree via [`DeepTree::truncate`].
    pub fn fit_deep_in(
        x: &Matrix,
        y: &[bool],
        max_depth: usize,
        weights: Option<&[f64]>,
        ws: &mut TreeWorkspace,
    ) -> DeepTree {
        run_kernel(x, y, max_depth.max(1), weights, ws)
    }

    /// Assembles a tree from raw parts (used by the DP random tree).
    pub fn from_parts(nodes: Vec<Node>, importances: Vec<f64>, max_depth: usize) -> Self {
        assert!(!nodes.is_empty(), "DecisionTree: empty node arena");
        DecisionTree { nodes, importances, max_depth }
    }

    /// Normalized impurity-decrease importances (sum to 1 when nonzero).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Depth limit the tree was trained with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `P(y = 1 | x)` from the reached leaf.
    pub fn proba_one(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { proba } => return *proba,
                Node::Split { feature, threshold, left, right } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicted label at the 0.5 threshold.
    pub fn predict_one(&self, x: &[f64]) -> bool {
        self.proba_one(x) > 0.5
    }
}

/// A full-depth fit annotated with per-node creation depth, node
/// probability, and impurity-decrease contribution — everything needed to
/// derive any shallower tree in O(nodes) without refitting.
#[derive(Debug, Clone)]
pub struct DeepTree {
    /// Preorder node arena of the full-depth tree.
    nodes: Vec<Node>,
    /// Creation depth per node (root = 0).
    depth: Vec<u32>,
    /// `P(y = 1)` among the training instances reaching each node.
    proba: Vec<f64>,
    /// `gain × w_total` per split node (0 for leaves): the exact term the
    /// builder adds to that feature's importance.
    gain_w: Vec<f64>,
    n_features: usize,
    max_depth: usize,
    stats: FitStats,
}

impl DeepTree {
    /// The depth this tree was fitted at.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Nodes in the full-depth arena.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Work counters of the underlying kernel fit.
    pub fn stats(&self) -> FitStats {
        self.stats
    }

    /// Total impurity-decrease contribution of splits created at each
    /// depth `0..max_depth` (the per-depth gain totals behind truncation).
    pub fn gain_by_depth(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.max_depth];
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node, Node::Split { .. }) {
                totals[self.depth[i] as usize] += self.gain_w[i];
            }
        }
        totals
    }

    /// Derives the tree a direct fit at `max_depth = depth` would produce,
    /// bit-identically, in O(nodes): split nodes created at `depth` become
    /// leaves carrying their recorded probability, deeper subtrees are
    /// dropped, and importances are re-accumulated from the recorded gains
    /// in the original (preorder) order.
    ///
    /// # Panics
    /// Panics when `depth` exceeds the fitted depth — the annotation only
    /// records what the deep fit explored.
    pub fn truncate(&self, depth: usize) -> DecisionTree {
        let depth = depth.max(1);
        assert!(
            depth <= self.max_depth,
            "DeepTree::truncate: depth {depth} exceeds fitted depth {}",
            self.max_depth
        );
        let mut nodes = Vec::with_capacity(self.nodes.len());
        self.copy_subtree(0, depth, &mut nodes);
        DecisionTree { nodes, importances: self.importances_at(depth), max_depth: depth }
    }

    /// Preorder copy of the subtree at `i` with split nodes at
    /// `depth >= cutoff` demoted to leaves. Returns the new arena index.
    fn copy_subtree(&self, i: usize, cutoff: usize, out: &mut Vec<Node>) -> usize {
        match self.nodes[i] {
            Node::Leaf { proba } => {
                out.push(Node::Leaf { proba });
                out.len() - 1
            }
            Node::Split { feature, threshold, left, right } => {
                if self.depth[i] as usize >= cutoff {
                    out.push(Node::Leaf { proba: self.proba[i] });
                    out.len() - 1
                } else {
                    // Reserve this node's slot before the children, exactly
                    // like the builder does.
                    let me = out.len();
                    out.push(Node::Leaf { proba: self.proba[i] });
                    let l = self.copy_subtree(left, cutoff, out);
                    let r = self.copy_subtree(right, cutoff, out);
                    out[me] = Node::Split { feature, threshold, left: l, right: r };
                    me
                }
            }
        }
    }

    /// Normalized importances of the depth-`cutoff` truncation. The arena
    /// is in preorder — the order the builder accumulates importances in —
    /// so a linear scan reproduces the identical floating-point sums.
    /// Splits inside dropped subtrees sit at depth > `cutoff` and are
    /// skipped by the same depth test that drops them.
    fn importances_at(&self, cutoff: usize) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Split { feature, .. } = node {
                if (self.depth[i] as usize) < cutoff {
                    imp[*feature] += self.gain_w[i];
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

/// Runs the workspace's configured kernel at `max_depth` (already clamped
/// ≥ 1) and returns the annotated full arena. Scratch comes from — and
/// returns to — `ws`; `ws.last_stats` is refreshed.
fn run_kernel(
    x: &Matrix,
    y: &[bool],
    max_depth: usize,
    weights: Option<&[f64]>,
    ws: &mut TreeWorkspace,
) -> DeepTree {
    match ws.exactness {
        SplitExactness::Binned256 | SplitExactness::Binned4096 => {
            run_binned_kernel(x, y, max_depth, weights, ws)
        }
        SplitExactness::Presorted => run_presorted_kernel(x, y, max_depth, weights, ws),
    }
}

/// The presorted-kernel driver behind [`run_kernel`].
fn run_presorted_kernel(
    x: &Matrix,
    y: &[bool],
    max_depth: usize,
    weights: Option<&[f64]>,
    ws: &mut TreeWorkspace,
) -> DeepTree {
    let (n, d) = x.shape();
    assert_eq!(n, y.len(), "DecisionTree: row/label mismatch");
    assert!(n > 0, "DecisionTree: empty training set");
    assert!(n <= u32::MAX as usize, "DecisionTree: too many rows for the u32 kernel");

    let mut unit_w = std::mem::take(&mut ws.unit_w);
    let w: &[f64] = match weights {
        Some(w) => {
            assert_eq!(w.len(), n, "DecisionTree: weight length mismatch");
            w
        }
        None => {
            unit_w.clear();
            unit_w.resize(n, 1.0);
            &unit_w
        }
    };

    // Presort: each feature's row order, stably sorted by value. A node's
    // segment of every order array is the node's rows sorted by that
    // feature, ties in row-ascending order — the same order the naive
    // builder's stable per-node sort would produce.
    let mut order = std::mem::take(&mut ws.order);
    let mut col = std::mem::take(&mut ws.col);
    order.clear();
    order.reserve(d * n);
    for f in 0..d {
        let start = order.len();
        order.extend(0..n as u32);
        col.clear();
        col.extend((0..n).map(|i| x[(i, f)]));
        stable_sort_indices_by_key(&mut order[start..], &col);
    }
    let mut rows = std::mem::take(&mut ws.rows);
    rows.clear();
    rows.extend(0..n as u32);

    let mut kernel = Kernel {
        x,
        y,
        w,
        n,
        d,
        max_depth,
        order,
        rows,
        scratch: std::mem::take(&mut ws.scratch),
        nodes: Vec::new(),
        depth: Vec::new(),
        proba: Vec::new(),
        gain_w: Vec::new(),
        stats: FitStats::default(),
    };
    // Root class counts, accumulated in row-ascending order (the same
    // order the naive builder's `weighted_counts` walks).
    let mut w_pos = 0.0;
    let mut w_total = 0.0;
    for i in 0..n {
        w_total += w[i];
        if y[i] {
            w_pos += w[i];
        }
    }
    kernel.build(0, n, 0, w_pos, w_total);
    let Kernel { order, rows, scratch, nodes, depth, proba, gain_w, stats, .. } = kernel;

    // Hand the buffers back for the next fit.
    ws.order = order;
    ws.rows = rows;
    ws.scratch = scratch;
    ws.col = col;
    ws.unit_w = unit_w;
    ws.last_stats = stats;

    DeepTree { nodes, depth, proba, gain_w, n_features: d, max_depth, stats }
}

/// The presorted builder: every node owns the segment `[lo, hi)` of the
/// shared `rows` array (row-ascending) and of each feature's `order` array
/// (value-sorted), and hands disjoint subsegments to its children by
/// stable partition.
struct Kernel<'a> {
    x: &'a Matrix,
    y: &'a [bool],
    w: &'a [f64],
    n: usize,
    d: usize,
    max_depth: usize,
    order: Vec<u32>,
    rows: Vec<u32>,
    scratch: Vec<u32>,
    nodes: Vec<Node>,
    depth: Vec<u32>,
    proba: Vec<f64>,
    gain_w: Vec<f64>,
    stats: FitStats,
}

impl Kernel<'_> {
    /// Builds the subtree over segment `[lo, hi)`, returning its arena
    /// index. `w_pos` / `w_total` are this node's class counts, accumulated
    /// by the parent's partition in this node's row-ascending order (so
    /// they carry the exact bits a fresh scan would produce).
    fn build(&mut self, lo: usize, hi: usize, depth: usize, w_pos: f64, w_total: f64) -> usize {
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        let node_gini = gini(w_pos, w_total);

        if depth >= self.max_depth
            || hi - lo < MIN_SAMPLES_SPLIT
            || node_gini <= dfs_linalg::EPS
        {
            return self.push(Node::Leaf { proba }, depth, proba, 0.0);
        }

        match self.best_split(lo, hi, node_gini, w_pos, w_total) {
            None => self.push(Node::Leaf { proba }, depth, proba, 0.0),
            Some(split) => {
                let gain_w = split.gain * w_total;
                let (nl, left_counts, right_counts) =
                    self.partition(lo, hi, split.feature, split.threshold);
                // Reserve this node's slot before recursing.
                let me = self.push(Node::Leaf { proba }, depth, proba, gain_w);
                let left = self.build(lo, lo + nl, depth + 1, left_counts.0, left_counts.1);
                let right = self.build(lo + nl, hi, depth + 1, right_counts.0, right_counts.1);
                self.nodes[me] =
                    Node::Split { feature: split.feature, threshold: split.threshold, left, right };
                me
            }
        }
    }

    fn push(&mut self, node: Node, depth: usize, proba: f64, gain_w: f64) -> usize {
        self.nodes.push(node);
        self.depth.push(depth as u32);
        self.proba.push(proba);
        self.gain_w.push(gain_w);
        self.stats.nodes += 1;
        self.nodes.len() - 1
    }

    /// Scans every feature's presorted segment for the best threshold.
    /// Identical candidate enumeration and floating-point order to the
    /// naive splitter: features ascending, positions ascending, running
    /// prefix sums accumulated one element at a time.
    fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        node_gini: f64,
        w_pos: f64,
        w_total: f64,
    ) -> Option<SplitChoice> {
        let len = hi - lo;
        let mut best: Option<SplitChoice> = None;
        for feature in 0..self.d {
            self.stats.split_scans += 1;
            let seg = &self.order[feature * self.n + lo..feature * self.n + hi];
            let mut prev = self.x[(seg[0] as usize, feature)];
            if prev == self.x[(seg[len - 1] as usize, feature)] {
                continue; // constant feature on this node
            }
            // Running prefix sums over the sorted order: after step k they
            // cover seg[0..k], matching the naive prefix arrays bit-for-bit.
            let mut left_total = 0.0;
            let mut left_pos = 0.0;
            for k in 1..len {
                let r = seg[k - 1] as usize;
                let wr = self.w[r];
                left_total += wr;
                if self.y[r] {
                    left_pos += wr;
                }
                // Candidate boundary: every position where the value changes.
                let v = self.x[(seg[k] as usize, feature)];
                if v > prev {
                    let threshold = 0.5 * (prev + v);
                    let right_total = w_total - left_total;
                    if left_total > 0.0 && right_total > 0.0 {
                        let right_pos = w_pos - left_pos;
                        let child = (left_total * gini(left_pos, left_total)
                            + right_total * gini(right_pos, right_total))
                            / w_total;
                        // Like scikit-learn, zero-gain splits are allowed
                        // (depth and purity are the stopping rules) — this
                        // is what lets a depth-2 tree solve XOR, whose root
                        // split has exactly zero Gini gain.
                        let gain = (node_gini - child).max(0.0);
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(SplitChoice { feature, threshold, gain });
                        }
                    }
                }
                prev = v;
            }
        }
        best
    }

    /// Stably partitions the node's segment of `rows` and of every
    /// feature's order array by the chosen split, accumulating each child's
    /// class counts in that child's row-ascending order along the way.
    /// Returns `(left_len, (left_pos, left_total), (right_pos, right_total))`.
    fn partition(
        &mut self,
        lo: usize,
        hi: usize,
        feature: usize,
        threshold: f64,
    ) -> (usize, (f64, f64), (f64, f64)) {
        let x = self.x;
        let mut left_pos = 0.0;
        let mut left_total = 0.0;
        let mut right_pos = 0.0;
        let mut right_total = 0.0;
        // Manual stable partition of the row-ascending set so the count
        // accumulators see each child's rows in exactly the order a fresh
        // `weighted_counts` scan of that child would.
        self.scratch.clear();
        let seg = &mut self.rows[lo..hi];
        let mut write = 0usize;
        for read in 0..seg.len() {
            let r = seg[read];
            let ri = r as usize;
            let wr = self.w[ri];
            if x[(ri, feature)] <= threshold {
                seg[write] = r;
                write += 1;
                left_total += wr;
                if self.y[ri] {
                    left_pos += wr;
                }
            } else {
                self.scratch.push(r);
                right_total += wr;
                if self.y[ri] {
                    right_pos += wr;
                }
            }
        }
        seg[write..].copy_from_slice(&self.scratch);

        for f in 0..self.d {
            let seg = &mut self.order[f * self.n + lo..f * self.n + hi];
            stable_partition_in_place(seg, &mut self.scratch, |&r| {
                x[(r as usize, feature)] <= threshold
            });
        }
        (write, (left_pos, left_total), (right_pos, right_total))
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Sentinel slot id for nodes that never need a histogram (guaranteed
/// leaves).
const NO_SLOT: usize = usize::MAX;

/// Quantizes the fit matrix into `ws.codes` and fills the flattened bin
/// tables (`ws.bin_lo` / `ws.bin_hi` / `ws.bin_off`): a pure code gather
/// from the bound [`BinSet`] when one is armed, a per-fit derivation at
/// the exactness mode's bin budget otherwise.
fn prepare_binned_inputs(x: &Matrix, ws: &mut TreeWorkspace) {
    let (n, d) = x.shape();
    let width = ws.exactness.code_width().unwrap_or_default();
    ws.bin_lo.clear();
    ws.bin_hi.clear();
    ws.bin_off.clear();
    ws.bin_off.push(0);
    ws.codes.clear();
    ws.codes.resize(d * n, 0);
    match &ws.bound_bins {
        Some(bins) => {
            assert_eq!(
                ws.bound_cols.len(),
                d,
                "TreeWorkspace: bound bins do not match the training matrix width"
            );
            assert_eq!(
                ws.bound_rows.len(),
                n,
                "TreeWorkspace: bound bins do not match the training matrix height"
            );
            assert_eq!(
                bins.width(),
                width,
                "TreeWorkspace: bound bins were derived at a different code \
                 width than the workspace exactness mode"
            );
            for f in 0..d {
                let src = ws.bound_cols[f];
                let fb = &bins.feats[src];
                ws.bin_lo.extend_from_slice(&fb.lo);
                ws.bin_hi.extend_from_slice(&fb.hi);
                ws.bin_off.push(ws.bin_lo.len() as u32);
                bins.gather_codes(src, &ws.bound_rows, &mut ws.codes[f * n..(f + 1) * n]);
            }
        }
        None => {
            let max_bins = width.max_bins();
            let mut col = std::mem::take(&mut ws.col);
            for f in 0..d {
                x.col_into(f, &mut col);
                col.sort_unstable_by(|a, b| match a.partial_cmp(b) {
                    Some(ord) => ord,
                    None => panic!("DecisionTree: finite features required"),
                });
                let fb = FeatureBins::from_sorted_with(&col, max_bins);
                ws.bin_lo.extend_from_slice(&fb.lo);
                ws.bin_hi.extend_from_slice(&fb.hi);
                ws.bin_off.push(ws.bin_lo.len() as u32);
                for (c, v) in ws.codes[f * n..(f + 1) * n].iter_mut().zip(x.col_iter(f)) {
                    *c = fb.code_of(v);
                }
            }
            ws.col = col;
        }
    }
}

/// The histogram-kernel driver behind [`run_kernel`].
fn run_binned_kernel(
    x: &Matrix,
    y: &[bool],
    max_depth: usize,
    weights: Option<&[f64]>,
    ws: &mut TreeWorkspace,
) -> DeepTree {
    let (n, d) = x.shape();
    assert_eq!(n, y.len(), "DecisionTree: row/label mismatch");
    assert!(n > 0, "DecisionTree: empty training set");
    assert!(n <= u32::MAX as usize, "DecisionTree: too many rows for the u32 kernel");

    let mut unit_w = std::mem::take(&mut ws.unit_w);
    let w: &[f64] = match weights {
        Some(w) => {
            assert_eq!(w.len(), n, "DecisionTree: weight length mismatch");
            w
        }
        None => {
            unit_w.clear();
            unit_w.resize(n, 1.0);
            &unit_w
        }
    };

    prepare_binned_inputs(x, ws);
    let stride = ws.bin_off[d] as usize;
    if stride != ws.hist_stride || d != ws.hist_d {
        // Pool buffers are sized (and zeroed) for one (stride, d) shape;
        // reshaping drops them so `alloc_slot` rebuilds clean ones.
        ws.hist_pool.clear();
        ws.hist_stride = stride;
        ws.hist_d = d;
    }

    let mut rows = std::mem::take(&mut ws.rows);
    rows.clear();
    rows.extend(0..n as u32);

    // An inactive config cannot drop rows, so it runs the identical
    // unsampled code path (the `goss(1.0, 1.0) ≡ off` bit-identity).
    let goss = ws.goss.filter(GossConfig::active);

    let mut kernel = BinnedKernel {
        x,
        y,
        w,
        n,
        d,
        max_depth,
        goss,
        codes: std::mem::take(&mut ws.codes),
        bin_lo: std::mem::take(&mut ws.bin_lo),
        bin_hi: std::mem::take(&mut ws.bin_hi),
        off: std::mem::take(&mut ws.bin_off),
        rows,
        scratch: std::mem::take(&mut ws.scratch),
        w_buf: std::mem::take(&mut ws.w_buf),
        pos_buf: std::mem::take(&mut ws.pos_buf),
        goss_g: std::mem::take(&mut ws.goss_g),
        goss_h: std::mem::take(&mut ws.goss_h),
        goss_rows: std::mem::take(&mut ws.goss_rows),
        pool: std::mem::take(&mut ws.hist_pool),
        free: Vec::new(),
        stride,
        nodes: Vec::new(),
        depth: Vec::new(),
        proba: Vec::new(),
        gain_w: Vec::new(),
        stats: FitStats::default(),
    };
    // Every pooled buffer is zero between fits (the release invariant), so
    // all of them start free.
    kernel.free.extend(0..kernel.pool.len());

    // Root class counts, accumulated in row-ascending order (identical to
    // the presorted kernel).
    let mut w_pos = 0.0;
    let mut w_total = 0.0;
    for i in 0..n {
        w_total += w[i];
        if y[i] {
            w_pos += w[i];
        }
    }
    // Under GOSS every splittable node builds its own (sampled) histogram
    // at `build` entry — sibling derivation is off, because a subsampled
    // parent histogram is not the sum of its children's.
    let root_slot = if goss.is_none() && kernel.needs_split_scan(n, 0, gini(w_pos, w_total)) {
        let s = kernel.alloc_slot();
        kernel.build_hist(0, n, s);
        s
    } else {
        NO_SLOT
    };
    kernel.build(0, n, 0, w_pos, w_total, root_slot);

    let BinnedKernel {
        codes,
        bin_lo,
        bin_hi,
        off,
        rows,
        scratch,
        w_buf,
        pos_buf,
        goss_g,
        goss_h,
        goss_rows,
        pool,
        nodes,
        depth,
        proba,
        gain_w,
        stats,
        ..
    } = kernel;
    ws.codes = codes;
    ws.bin_lo = bin_lo;
    ws.bin_hi = bin_hi;
    ws.bin_off = off;
    ws.rows = rows;
    ws.scratch = scratch;
    ws.w_buf = w_buf;
    ws.pos_buf = pos_buf;
    ws.goss_g = goss_g;
    ws.goss_h = goss_h;
    ws.goss_rows = goss_rows;
    ws.hist_pool = pool;
    ws.unit_w = unit_w;
    ws.last_stats = stats;

    DeepTree { nodes, depth, proba, gain_w, n_features: d, max_depth, stats }
}

/// The histogram builder: every node owns the segment `[lo, hi)` of the
/// shared `rows` array (row-ascending) plus, when it can split, one pooled
/// histogram buffer; children reuse the parent's buffer via in-place
/// parent-minus-sibling subtraction.
struct BinnedKernel<'a> {
    x: &'a Matrix,
    y: &'a [bool],
    w: &'a [f64],
    n: usize,
    d: usize,
    max_depth: usize,
    /// Active GOSS config, if any (inactive ones are filtered out by the
    /// driver).
    goss: Option<GossConfig>,
    /// Column-major `d × n` quantized feature codes.
    codes: Vec<u16>,
    /// Flattened per-feature bin `lo` values.
    bin_lo: Vec<f64>,
    /// Flattened per-feature bin `hi` values.
    bin_hi: Vec<f64>,
    /// Prefix offsets into `bin_lo`/`bin_hi` (`d + 1` entries).
    off: Vec<u32>,
    rows: Vec<u32>,
    scratch: Vec<u32>,
    w_buf: Vec<f64>,
    pos_buf: Vec<f64>,
    goss_g: Vec<(f64, u32)>,
    goss_h: Vec<(u64, u32)>,
    goss_rows: Vec<u32>,
    pool: Vec<HistBuf>,
    free: Vec<usize>,
    stride: usize,
    nodes: Vec<Node>,
    depth: Vec<u32>,
    proba: Vec<f64>,
    gain_w: Vec<f64>,
    stats: FitStats,
}

impl BinnedKernel<'_> {
    /// Whether a node with these parameters will attempt a split — the
    /// negation of the leaf test, factored out so a parent can decide
    /// before recursing whether a child needs a histogram at all.
    fn needs_split_scan(&self, len: usize, depth: usize, node_gini: f64) -> bool {
        depth < self.max_depth && len >= MIN_SAMPLES_SPLIT && node_gini > dfs_linalg::EPS
    }

    /// Takes a zeroed histogram buffer from the pool, growing it on demand.
    fn alloc_slot(&mut self) -> usize {
        if let Some(s) = self.free.pop() {
            return s;
        }
        self.pool.push(HistBuf {
            cnt: vec![0; self.stride],
            wtot: vec![0.0; self.stride],
            wpos: vec![0.0; self.stride],
            range: vec![(1, 0); self.d],
            dirty: vec![(1, 0); self.d],
        });
        self.pool.len() - 1
    }

    /// Returns a buffer to the pool, restoring the all-zero invariant by
    /// clearing exactly the spans this allocation touched.
    fn release(&mut self, slot: usize) {
        if slot == NO_SLOT {
            return;
        }
        let buf = &mut self.pool[slot];
        for f in 0..self.d {
            let (mn, mx) = buf.dirty[f];
            if mn > mx {
                continue;
            }
            let base = self.off[f] as usize;
            let lo = base + mn as usize;
            let hi = base + mx as usize + 1;
            buf.cnt[lo..hi].fill(0);
            buf.wtot[lo..hi].fill(0.0);
            buf.wpos[lo..hi].fill(0.0);
            buf.range[f] = (1, 0);
            buf.dirty[f] = (1, 0);
        }
        self.free.push(slot);
    }

    /// Builds the node's histogram in one pass over its rows: weights and
    /// positive-weights are gathered into compact buffers once, then each
    /// feature's loop reads them sequentially while scattering into the
    /// per-bin accumulators (branchless — negatives contribute `+0.0` to
    /// the positive sum, which is bit-neutral for the non-negative partial
    /// sums involved).
    fn build_hist(&mut self, lo: usize, hi: usize, slot: usize) {
        self.w_buf.clear();
        self.pos_buf.clear();
        for &r in &self.rows[lo..hi] {
            let ri = r as usize;
            let wr = self.w[ri];
            self.w_buf.push(wr);
            self.pos_buf.push(if self.y[ri] { wr } else { 0.0 });
        }
        let rows = &self.rows[lo..hi];
        let buf = &mut self.pool[slot];
        for f in 0..self.d {
            let base = self.off[f] as usize;
            let col = &self.codes[f * self.n..(f + 1) * self.n];
            let mut minc = u16::MAX;
            let mut maxc = 0u16;
            for ((&r, &wr), &pr) in rows.iter().zip(&self.w_buf).zip(&self.pos_buf) {
                let b = col[r as usize];
                let i = base + b as usize;
                buf.cnt[i] += 1;
                buf.wtot[i] += wr;
                buf.wpos[i] += pr;
                minc = minc.min(b);
                maxc = maxc.max(b);
            }
            buf.range[f] = (minc, maxc);
            buf.dirty[f] = (minc, maxc);
        }
    }

    /// GOSS histogram build for the node over `[lo, hi)` (`node_id` is its
    /// preorder arena index): keeps the `top_frac` share of rows with the
    /// largest gradient proxy `w_i·|y_i − proba|` exactly, draws a
    /// `rest_frac` share of the remainder by smallest per-node row hash
    /// (`derive_seed(derive_seed(g.seed, node_id), row)` — a pure function
    /// of the row set, independent of traversal or thread count), and
    /// amplifies the drawn remainder's weights by `n_rest / n_drawn` so the
    /// histogram's expected sums equal the exact ones. Rows are accumulated
    /// in ascending-row order, making the float sums deterministic.
    ///
    /// Returns the sampled `(w_pos, w_total)` the split scan must run
    /// against, or `None` when the node passed through unsampled (too small
    /// or the ceil shares cover it) and the caller's exact counts apply.
    fn build_hist_goss(
        &mut self,
        lo: usize,
        hi: usize,
        slot: usize,
        node_id: u64,
        g: GossConfig,
        proba: f64,
    ) -> Option<(f64, f64)> {
        let len = hi - lo;
        let keep = ((g.top_frac * len as f64).ceil() as usize).min(len);
        let rest = ((g.rest_frac * len as f64).ceil() as usize).min(len - keep);
        if len < g.min_rows.max(MIN_SAMPLES_SPLIT) || keep + rest >= len {
            self.build_hist(lo, hi, slot);
            return None;
        }
        let mut gbuf = std::mem::take(&mut self.goss_g);
        gbuf.clear();
        for &r in &self.rows[lo..hi] {
            let ri = r as usize;
            let target = if self.y[ri] { 1.0 } else { 0.0 };
            gbuf.push((self.w[ri] * (target - proba).abs(), r));
        }
        // Top-`keep` by gradient (descending, row-ascending tiebreak): a
        // total order, so the selected *set* is order-independent.
        if keep > 0 {
            gbuf.select_nth_unstable_by(keep - 1, |a, b| {
                b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
            });
        }
        // Uniform draw of `rest` from the remainder: smallest (hash, row)
        // pairs win. Hash-based selection needs no RNG stream and is again
        // a pure function of the remainder set and the node seed.
        let node_seed = derive_seed(g.seed, node_id);
        let mut hbuf = std::mem::take(&mut self.goss_h);
        hbuf.clear();
        hbuf.extend(gbuf[keep..].iter().map(|&(_, r)| (derive_seed(node_seed, r as u64), r)));
        if rest > 0 {
            hbuf.select_nth_unstable_by(rest - 1, |a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        let amp = if rest > 0 { (len - keep) as f64 / rest as f64 } else { 0.0 };
        gbuf[..keep].sort_unstable_by_key(|&(_, r)| r);
        hbuf[..rest].sort_unstable_by_key(|&(_, r)| r);

        // Merge the two disjoint row-ascending sets, filling the compact
        // weight gathers (kept rows exact, drawn rows amplified) and the
        // sampled totals along the way.
        let mut samp = std::mem::take(&mut self.goss_rows);
        samp.clear();
        self.w_buf.clear();
        self.pos_buf.clear();
        let mut scan_pos = 0.0;
        let mut scan_total = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < keep || j < rest {
            let take_top = j >= rest || (i < keep && gbuf[i].1 < hbuf[j].1);
            let (r, mult) = if take_top {
                let r = gbuf[i].1;
                i += 1;
                (r, 1.0)
            } else {
                let r = hbuf[j].1;
                j += 1;
                (r, amp)
            };
            let ri = r as usize;
            let wr = self.w[ri] * mult;
            let pr = if self.y[ri] { wr } else { 0.0 };
            samp.push(r);
            self.w_buf.push(wr);
            self.pos_buf.push(pr);
            scan_total += wr;
            scan_pos += pr;
        }
        self.goss_g = gbuf;
        self.goss_h = hbuf;

        // Scatter the sampled rows into the histogram (the same loop shape
        // as `build_hist`, over the sampled list).
        let buf = &mut self.pool[slot];
        for f in 0..self.d {
            let base = self.off[f] as usize;
            let col = &self.codes[f * self.n..(f + 1) * self.n];
            let mut minc = u16::MAX;
            let mut maxc = 0u16;
            for ((&r, &wr), &pr) in samp.iter().zip(&self.w_buf).zip(&self.pos_buf) {
                let b = col[r as usize];
                let i = base + b as usize;
                buf.cnt[i] += 1;
                buf.wtot[i] += wr;
                buf.wpos[i] += pr;
                minc = minc.min(b);
                maxc = maxc.max(b);
            }
            buf.range[f] = (minc, maxc);
            buf.dirty[f] = (minc, maxc);
        }
        self.goss_rows = samp;
        Some((scan_pos, scan_total))
    }

    /// Converts the parent's histogram into the larger child's in place:
    /// `parent -= smaller_child`, a blocked stride-1 subtraction over the
    /// parent's occupied span, then tightens the occupied range from the
    /// exact integer counts. Counts subtract exactly; weight sums of bins
    /// fully owned by the smaller child cancel to exactly `0.0` (both sides
    /// accumulated the identical row-order sequence), so emptied bins stay
    /// clean.
    fn derive_sibling(&mut self, parent: usize, small: usize) {
        debug_assert_ne!(parent, small);
        let (pbuf, sbuf) = if parent < small {
            let (a, b) = self.pool.split_at_mut(small);
            (&mut a[parent], &b[0])
        } else {
            let (a, b) = self.pool.split_at_mut(parent);
            (&mut b[0], &a[small])
        };
        for f in 0..self.d {
            let (pmin, pmax) = pbuf.range[f];
            if pmin > pmax {
                continue;
            }
            let base = self.off[f] as usize;
            let lo = base + pmin as usize;
            let hi = base + pmax as usize + 1;
            for (a, b) in pbuf.cnt[lo..hi].iter_mut().zip(&sbuf.cnt[lo..hi]) {
                *a -= *b;
            }
            for (a, b) in pbuf.wtot[lo..hi].iter_mut().zip(&sbuf.wtot[lo..hi]) {
                *a -= *b;
            }
            for (a, b) in pbuf.wpos[lo..hi].iter_mut().zip(&sbuf.wpos[lo..hi]) {
                *a -= *b;
            }
            let mut minc = u16::MAX;
            let mut maxc = 0u16;
            for (k, c) in pbuf.cnt[lo..hi].iter().enumerate() {
                if *c > 0 {
                    let b = (pmin as usize + k) as u16;
                    if minc == u16::MAX {
                        minc = b;
                    }
                    maxc = b;
                }
            }
            pbuf.range[f] = (minc, maxc);
            // `dirty` keeps the parent's wider span — subtraction can leave
            // exact zeros outside the tightened range that release() must
            // still (cheaply) clear.
        }
    }

    /// Builds the subtree over segment `[lo, hi)` whose histogram (if any)
    /// sits in `slot`, returning its arena index. `w_pos` / `w_total` are
    /// this node's class counts, accumulated by the parent's partition in
    /// row-ascending order, exactly like the presorted kernel.
    ///
    /// Under GOSS, `slot` is always `NO_SLOT` on entry: each splittable
    /// node allocates a buffer and builds its own sampled histogram here,
    /// keyed by its preorder arena index (`nodes.len()` at entry, which is
    /// exactly the index this node will occupy — parents push themselves
    /// before recursing). Leaf tests, probabilities, partitions, and the
    /// children's class counts all remain exact.
    fn build(
        &mut self,
        lo: usize,
        hi: usize,
        depth: usize,
        w_pos: f64,
        w_total: f64,
        slot: usize,
    ) -> usize {
        let node_id = self.nodes.len() as u64;
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        let node_gini = gini(w_pos, w_total);

        if !self.needs_split_scan(hi - lo, depth, node_gini) {
            self.release(slot);
            return self.push(Node::Leaf { proba }, depth, proba, 0.0);
        }

        let (slot, scan_pos, scan_total, scan_gini) = match self.goss {
            Some(g) => {
                debug_assert_eq!(slot, NO_SLOT);
                let s = self.alloc_slot();
                match self.build_hist_goss(lo, hi, s, node_id, g, proba) {
                    Some((sp, st)) => (s, sp, st, gini(sp, st)),
                    None => (s, w_pos, w_total, node_gini),
                }
            }
            None => (slot, w_pos, w_total, node_gini),
        };

        match self.best_split(slot, scan_gini, scan_pos, scan_total) {
            None => {
                self.release(slot);
                self.push(Node::Leaf { proba }, depth, proba, 0.0)
            }
            Some(split) => {
                // With GOSS the gain and totals are the (unbiased) sampled
                // estimates; without, they are the exact node sums.
                let gain_w = split.gain * scan_total;
                let (nl, left_counts, right_counts) =
                    self.partition(lo, hi, split.feature, split.threshold);
                let nr = (hi - lo) - nl;
                let left_needs =
                    self.needs_split_scan(nl, depth + 1, gini(left_counts.0, left_counts.1));
                let right_needs =
                    self.needs_split_scan(nr, depth + 1, gini(right_counts.0, right_counts.1));
                let (left_slot, right_slot) = if self.goss.is_some() {
                    // Sampled histograms don't subtract: children build
                    // their own at their turn.
                    self.release(slot);
                    (NO_SLOT, NO_SLOT)
                } else {
                    match (left_needs, right_needs) {
                        (false, false) => {
                            self.release(slot);
                            (NO_SLOT, NO_SLOT)
                        }
                        (true, false) => {
                            let s = self.alloc_slot();
                            self.build_hist(lo, lo + nl, s);
                            self.release(slot);
                            (s, NO_SLOT)
                        }
                        (false, true) => {
                            let s = self.alloc_slot();
                            self.build_hist(lo + nl, hi, s);
                            self.release(slot);
                            (NO_SLOT, s)
                        }
                        (true, true) => {
                            // Build the smaller child fresh; the larger child
                            // inherits the parent's buffer by subtraction.
                            let s = self.alloc_slot();
                            if nl <= nr {
                                self.build_hist(lo, lo + nl, s);
                                self.derive_sibling(slot, s);
                                (s, slot)
                            } else {
                                self.build_hist(lo + nl, hi, s);
                                self.derive_sibling(slot, s);
                                (slot, s)
                            }
                        }
                    }
                };
                // Reserve this node's slot before recursing.
                let me = self.push(Node::Leaf { proba }, depth, proba, gain_w);
                let left = self.build(lo, lo + nl, depth + 1, left_counts.0, left_counts.1, left_slot);
                let right =
                    self.build(lo + nl, hi, depth + 1, right_counts.0, right_counts.1, right_slot);
                self.nodes[me] =
                    Node::Split { feature: split.feature, threshold: split.threshold, left, right };
                me
            }
        }
    }

    fn push(&mut self, node: Node, depth: usize, proba: f64, gain_w: f64) -> usize {
        self.nodes.push(node);
        self.depth.push(depth as u32);
        self.proba.push(proba);
        self.gain_w.push(gain_w);
        self.stats.nodes += 1;
        self.nodes.len() - 1
    }

    /// Scans the node's histogram for the best threshold: per feature, an
    /// O(occupied bins) walk emitting a candidate at every boundary between
    /// occupied bins, with the identical gain expression, comparison order,
    /// and tie-breaking as the presorted kernel. Thresholds come from the
    /// dataset-level bin representatives: `0.5 * (hi[prev] + lo[next])`.
    fn best_split(
        &mut self,
        slot: usize,
        node_gini: f64,
        w_pos: f64,
        w_total: f64,
    ) -> Option<SplitChoice> {
        let buf = &self.pool[slot];
        let mut best: Option<SplitChoice> = None;
        for feature in 0..self.d {
            self.stats.split_scans += 1;
            let (minc, maxc) = buf.range[feature];
            if minc >= maxc {
                continue; // constant on this node (single occupied bin)
            }
            let base = self.off[feature] as usize;
            let mut left_total = 0.0;
            let mut left_pos = 0.0;
            let mut prev: Option<usize> = None;
            for b in (minc as usize)..=(maxc as usize) {
                let i = base + b;
                if buf.cnt[i] == 0 {
                    continue;
                }
                if let Some(p) = prev {
                    // Candidate between occupied bins p and b; the left
                    // sums cover bins <= p.
                    let threshold = 0.5 * (self.bin_hi[base + p] + self.bin_lo[i]);
                    let right_total = w_total - left_total;
                    if left_total > 0.0 && right_total > 0.0 {
                        let right_pos = w_pos - left_pos;
                        let child = (left_total * gini(left_pos, left_total)
                            + right_total * gini(right_pos, right_total))
                            / w_total;
                        let gain = (node_gini - child).max(0.0);
                        if best.as_ref().map(|bst| gain > bst.gain).unwrap_or(true) {
                            best = Some(SplitChoice { feature, threshold, gain });
                        }
                    }
                }
                left_total += buf.wtot[i];
                left_pos += buf.wpos[i];
                prev = Some(b);
            }
        }
        best
    }

    /// Stably partitions the node's row segment by raw value against the
    /// chosen threshold (the same test prediction routing uses), in exactly
    /// the presorted kernel's manner — minus its d per-feature order-array
    /// partitions, which the histogram kernel does not need.
    fn partition(
        &mut self,
        lo: usize,
        hi: usize,
        feature: usize,
        threshold: f64,
    ) -> (usize, (f64, f64), (f64, f64)) {
        let x = self.x;
        let mut left_pos = 0.0;
        let mut left_total = 0.0;
        let mut right_pos = 0.0;
        let mut right_total = 0.0;
        self.scratch.clear();
        let seg = &mut self.rows[lo..hi];
        let mut write = 0usize;
        for read in 0..seg.len() {
            let r = seg[read];
            let ri = r as usize;
            let wr = self.w[ri];
            if x[(ri, feature)] <= threshold {
                seg[write] = r;
                write += 1;
                left_total += wr;
                if self.y[ri] {
                    left_pos += wr;
                }
            } else {
                self.scratch.push(r);
                right_total += wr;
                if self.y[ri] {
                    right_pos += wr;
                }
            }
        }
        seg[write..].copy_from_slice(&self.scratch);
        (write, (left_pos, left_total), (right_pos, right_total))
    }
}

/// Gini impurity of a (weighted) binary node.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-kernel naive splitter, kept verbatim as the bit-identity
    /// reference: per-node gather + stable sort + prefix arrays. The only
    /// change from the historical builder is that the node's class counts
    /// are computed once in `build` and passed to `best_split` (the sums
    /// are identical either way).
    mod reference {
        use super::super::*;

        pub fn fit(
            x: &Matrix,
            y: &[bool],
            max_depth: usize,
            weights: Option<&[f64]>,
        ) -> DecisionTree {
            let (n, d) = x.shape();
            assert_eq!(n, y.len());
            assert!(n > 0);
            let max_depth = max_depth.max(1);
            let w: Vec<f64> = match weights {
                Some(w) => w.to_vec(),
                None => vec![1.0; n],
            };
            let mut builder = Builder {
                x,
                y,
                w: &w,
                nodes: Vec::new(),
                importances: vec![0.0; d],
                max_depth,
            };
            let all: Vec<usize> = (0..n).collect();
            builder.build(&all, 0);
            let total: f64 = builder.importances.iter().sum();
            if total > 0.0 {
                for imp in &mut builder.importances {
                    *imp /= total;
                }
            }
            DecisionTree {
                nodes: builder.nodes,
                importances: builder.importances,
                max_depth,
            }
        }

        struct Builder<'a> {
            x: &'a Matrix,
            y: &'a [bool],
            w: &'a [f64],
            nodes: Vec<Node>,
            importances: Vec<f64>,
            max_depth: usize,
        }

        impl Builder<'_> {
            fn build(&mut self, idx: &[usize], depth: usize) -> usize {
                let (w_pos, w_total) = self.weighted_counts(idx);
                let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
                let node_gini = gini(w_pos, w_total);

                if depth >= self.max_depth
                    || idx.len() < MIN_SAMPLES_SPLIT
                    || node_gini <= dfs_linalg::EPS
                {
                    return self.push(Node::Leaf { proba });
                }

                match self.best_split(idx, node_gini, w_pos, w_total) {
                    None => self.push(Node::Leaf { proba }),
                    Some(split) => {
                        self.importances[split.feature] += split.gain * w_total;
                        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                            .iter()
                            .partition(|&&i| self.x[(i, split.feature)] <= split.threshold);
                        let me = self.push(Node::Leaf { proba });
                        let left = self.build(&left_idx, depth + 1);
                        let right = self.build(&right_idx, depth + 1);
                        self.nodes[me] = Node::Split {
                            feature: split.feature,
                            threshold: split.threshold,
                            left,
                            right,
                        };
                        me
                    }
                }
            }

            fn push(&mut self, node: Node) -> usize {
                self.nodes.push(node);
                self.nodes.len() - 1
            }

            fn weighted_counts(&self, idx: &[usize]) -> (f64, f64) {
                let mut pos = 0.0;
                let mut total = 0.0;
                for &i in idx {
                    total += self.w[i];
                    if self.y[i] {
                        pos += self.w[i];
                    }
                }
                (pos, total)
            }

            fn best_split(
                &self,
                idx: &[usize],
                node_gini: f64,
                w_pos: f64,
                w_total: f64,
            ) -> Option<SplitChoice> {
                let d = self.x.ncols();
                let mut best: Option<SplitChoice> = None;
                let mut values: Vec<(f64, f64, bool)> = Vec::with_capacity(idx.len());
                for feature in 0..d {
                    values.clear();
                    values.extend(
                        idx.iter().map(|&i| (self.x[(i, feature)], self.w[i], self.y[i])),
                    );
                    values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
                    if values.first().map(|v| v.0) == values.last().map(|v| v.0) {
                        continue;
                    }
                    let len = values.len();
                    let mut prefix_pos = vec![0.0; len + 1];
                    let mut prefix_total = vec![0.0; len + 1];
                    for (k, v) in values.iter().enumerate() {
                        prefix_total[k + 1] = prefix_total[k] + v.1;
                        prefix_pos[k + 1] = prefix_pos[k] + if v.2 { v.1 } else { 0.0 };
                    }
                    for k in (1..len).filter(|&k| values[k].0 > values[k - 1].0) {
                        let threshold = 0.5 * (values[k - 1].0 + values[k].0);
                        let left_total = prefix_total[k];
                        let right_total = w_total - left_total;
                        if left_total <= 0.0 || right_total <= 0.0 {
                            continue;
                        }
                        let left_pos = prefix_pos[k];
                        let right_pos = w_pos - left_pos;
                        let child = (left_total * gini(left_pos, left_total)
                            + right_total * gini(right_pos, right_total))
                            / w_total;
                        let gain = (node_gini - child).max(0.0);
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(SplitChoice { feature, threshold, gain });
                        }
                    }
                }
                best
            }
        }
    }

    fn assert_bit_identical(a: &DecisionTree, b: &DecisionTree) {
        assert_eq!(a.nodes, b.nodes, "node arenas differ");
        assert_eq!(a.max_depth, b.max_depth);
        assert_eq!(a.importances.len(), b.importances.len());
        for (i, (x, y)) in a.importances.iter().zip(&b.importances).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "importance {i}: {x} vs {y}");
        }
    }

    /// Deterministic data generator exercising the awkward cases: duplicate
    /// values (quantized columns), constant features, and non-uniform
    /// instance weights.
    fn awkward_problem(seed: u64, n: usize, d: usize) -> (Matrix, Vec<bool>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut w = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for f in 0..d {
                let v = if f == d - 1 {
                    0.37 // constant feature
                } else {
                    // Quantize to force duplicate values and ties.
                    ((next() % 7) as f64) / 7.0
                };
                row.push(v);
            }
            let label = (row[0] + row[1 % d] > 0.9) ^ (next() % 11 == 0);
            y.push(label);
            w.push(match next() % 4 {
                0 => 0.25,
                1 => 1.0,
                2 => 2.5,
                _ => 10.0,
            });
            rows.push(row);
        }
        (Matrix::from_rows(&rows), y, w)
    }

    /// `y = (x0 > 0.5) AND (x1 > 0.5)` — solvable exactly by greedy CART at
    /// depth 2 (unlike balanced XOR, whose root split has zero Gini gain and
    /// defeats any greedy splitter, scikit-learn included).
    fn and_problem() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let ja = 0.05 * ((i as f64 * 0.37) % 1.0);
            let jb = 0.05 * ((i as f64 * 0.73) % 1.0);
            rows.push(vec![a * 0.9 + ja, b * 0.9 + jb]);
            y.push(a > 0.5 && b > 0.5);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        let (x, y) = and_problem();
        let t = DecisionTree::fit(&x, &y, 2);
        for (row, &label) in x.rows_iter().zip(&y) {
            assert_eq!(t.predict_one(row), label, "row {row:?}");
        }
    }

    #[test]
    fn depth_one_stump_cannot_solve_conjunction() {
        let (x, y) = and_problem();
        let t = DecisionTree::fit(&x, &y, 1);
        let errors = x
            .rows_iter()
            .zip(&y)
            .filter(|(row, &label)| t.predict_one(row) != label)
            .count();
        assert!(errors >= 15, "stump should fail on AND, errors = {errors}");
    }

    #[test]
    fn importances_sum_to_one_and_pick_signal() {
        // Only feature 1 matters.
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i as f64 * 0.17) % 1.0, if i % 2 == 0 { 0.2 } else { 0.8 }]).collect();
        let y: Vec<bool> = (0..60).map(|i| i % 2 == 1).collect();
        let t = DecisionTree::fit(&Matrix::from_rows(&rows), &y, 3);
        let imp = t.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.9, "importances {imp:?}");
    }

    #[test]
    fn pure_node_is_a_single_leaf() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.5], vec![0.9]]);
        let t = DecisionTree::fit(&x, &[true, true, true], 5);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.predict_one(&[0.3]));
    }

    #[test]
    fn weighted_fit_shifts_the_decision() {
        // Same data, but weight the positive class heavily -> ambiguous
        // region should flip to positive.
        let x = Matrix::from_rows(&[
            vec![0.4],
            vec![0.45],
            vec![0.5],
            vec![0.55],
            vec![0.6],
            vec![0.65],
        ]);
        let y = vec![false, false, false, true, true, true];
        let heavy_pos = vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        let t = DecisionTree::fit_weighted(&x, &y, 1, Some(&heavy_pos));
        // The stump must still separate cleanly at ~0.525.
        assert!(!t.predict_one(&[0.4]));
        assert!(t.predict_one(&[0.6]));
    }

    #[test]
    fn probabilities_reflect_leaf_composition() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.2], vec![0.3], vec![0.9]]);
        let y = vec![true, true, false, false];
        // Depth 1: left leaf (low x) is 2/3 positive if split lands at ~0.6.
        let t = DecisionTree::fit(&x, &y, 1);
        let p = t.proba_one(&[0.15]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = and_problem();
        assert_eq!(DecisionTree::fit(&x, &y, 4), DecisionTree::fit(&x, &y, 4));
    }

    #[test]
    fn both_kernels_match_naive_reference_on_clean_data() {
        let (x, y) = and_problem();
        for mode in
            [SplitExactness::Binned256, SplitExactness::Binned4096, SplitExactness::Presorted]
        {
            let mut ws = TreeWorkspace::with_exactness(mode);
            for depth in 1..=5 {
                let kernel = DecisionTree::fit_in(&x, &y, depth, None, &mut ws);
                let naive = reference::fit(&x, &y, depth, None);
                assert_bit_identical(&kernel, &naive);
            }
        }
    }

    #[test]
    fn both_kernels_match_naive_reference_on_awkward_data() {
        // Duplicate values, constant features, weighted rows, many seeds.
        // Every column has <= 7 distinct values and the weights are dyadic,
        // so the binned kernels must be *bit-identical* to the reference,
        // not merely close.
        for mode in
            [SplitExactness::Binned256, SplitExactness::Binned4096, SplitExactness::Presorted]
        {
            let mut ws = TreeWorkspace::with_exactness(mode);
            for seed in 0..12u64 {
                let (x, y, w) = awkward_problem(seed, 90 + (seed as usize % 3) * 17, 5);
                for (depth, weights) in [(1, None), (3, Some(&w)), (6, None), (7, Some(&w))] {
                    let weights = weights.map(|w| w.as_slice());
                    let kernel = DecisionTree::fit_in(&x, &y, depth, weights, &mut ws);
                    let naive = reference::fit(&x, &y, depth, weights);
                    assert_bit_identical(&kernel, &naive);
                }
            }
        }
    }

    #[test]
    fn truncation_matches_direct_fits_at_every_depth() {
        let mut ws = TreeWorkspace::new();
        for seed in [3u64, 8, 21] {
            let (x, y, w) = awkward_problem(seed, 110, 4);
            for weights in [None, Some(w.as_slice())] {
                let deep = DecisionTree::fit_deep_in(&x, &y, 7, weights, &mut ws);
                for depth in 1..=7 {
                    let truncated = deep.truncate(depth);
                    let direct = DecisionTree::fit_in(&x, &y, depth, weights, &mut ws);
                    assert_bit_identical(&truncated, &direct);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds fitted depth")]
    fn truncation_beyond_fitted_depth_panics() {
        let (x, y) = and_problem();
        let mut ws = TreeWorkspace::new();
        let deep = DecisionTree::fit_deep_in(&x, &y, 3, None, &mut ws);
        let _ = deep.truncate(4);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_and_tracks_stats() {
        let (x, y) = and_problem();
        let mut ws = TreeWorkspace::new();
        let first = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        let stats = ws.last_stats();
        assert_eq!(stats.nodes, first.n_nodes() as u64);
        assert!(stats.split_scans > 0);
        // A different fit in between must not perturb a repeat fit.
        let (x2, y2, w2) = awkward_problem(5, 60, 3);
        let _ = DecisionTree::fit_in(&x2, &y2, 6, Some(&w2), &mut ws);
        let again = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        assert_bit_identical(&first, &again);
    }

    #[test]
    fn gain_by_depth_covers_all_importance_mass() {
        let (x, y, _) = awkward_problem(9, 120, 4);
        let mut ws = TreeWorkspace::new();
        let deep = DecisionTree::fit_deep_in(&x, &y, 5, None, &mut ws);
        let by_depth = deep.gain_by_depth();
        assert_eq!(by_depth.len(), 5);
        let from_depths: f64 = by_depth.iter().sum();
        let from_nodes: f64 = deep.gain_w.iter().sum();
        assert!((from_depths - from_nodes).abs() < 1e-12);
    }

    #[test]
    fn binned_matches_presorted_bit_for_bit_on_low_cardinality_data() {
        // The exactness argument, tested directly: <= 256 distinct values
        // per column + dyadic weights => identical trees.
        let mut binned = TreeWorkspace::with_exactness(SplitExactness::Binned256);
        let mut presorted = TreeWorkspace::with_exactness(SplitExactness::Presorted);
        for seed in 0..20u64 {
            let (x, y, w) = awkward_problem(seed, 70 + (seed as usize % 5) * 23, 6);
            for weights in [None, Some(w.as_slice())] {
                for depth in [1, 2, 4, 7] {
                    let b = DecisionTree::fit_in(&x, &y, depth, weights, &mut binned);
                    let p = DecisionTree::fit_in(&x, &y, depth, weights, &mut presorted);
                    assert_bit_identical(&b, &p);
                }
            }
        }
    }

    #[test]
    fn bound_bins_match_local_derivation() {
        // Binding the workspace to a dataset-level BinSet with identity
        // row/col maps must reproduce the per-fit derivation exactly.
        let (x, y, w) = awkward_problem(4, 100, 5);
        let (n, d) = x.shape();
        let bins = Arc::new(BinSet::derive(&x));
        let cols: Vec<usize> = (0..d).collect();
        let rows: Vec<usize> = (0..n).collect();

        let mut local = TreeWorkspace::new();
        let mut bound = TreeWorkspace::new();
        bound.bind_bins(&bins, &cols, &rows);
        for depth in [2, 5, 7] {
            let a = DecisionTree::fit_in(&x, &y, depth, Some(&w), &mut local);
            let b = DecisionTree::fit_in(&x, &y, depth, Some(&w), &mut bound);
            assert_bit_identical(&a, &b);
        }
    }

    #[test]
    fn bound_bins_on_row_col_subsets_match_presorted() {
        // The cache-sharing path: bins derived once on the full matrix, the
        // fit running on a (rows, cols) selection — exactly what scenario
        // subsets and forest bootstraps do. On low-cardinality columns the
        // occupied bins of any subset are its distinct values, so the result
        // must still equal the presorted kernel on the gathered submatrix.
        let (x, y, w) = awkward_problem(11, 120, 6);
        let bins = Arc::new(BinSet::derive(&x));
        let cols = vec![0usize, 2, 4, 5];
        let rows: Vec<usize> = (0..x.nrows()).filter(|r| r % 3 != 1).collect();
        let sub = x.select_rows_cols(&rows, &cols);
        let suby: Vec<bool> = rows.iter().map(|&r| y[r]).collect();
        let subw: Vec<f64> = rows.iter().map(|&r| w[r]).collect();

        let mut bound = TreeWorkspace::new();
        bound.bind_bins(&bins, &cols, &rows);
        let mut exact = TreeWorkspace::with_exactness(SplitExactness::Presorted);
        for depth in [1, 3, 6] {
            let b = DecisionTree::fit_in(&sub, &suby, depth, Some(&subw), &mut bound);
            let p = DecisionTree::fit_in(&sub, &suby, depth, Some(&subw), &mut exact);
            assert_bit_identical(&b, &p);
        }
    }

    #[test]
    fn binding_is_sticky_until_cleared() {
        let (x, y, _) = awkward_problem(2, 80, 4);
        let bins = Arc::new(BinSet::derive(&x));
        let cols: Vec<usize> = (0..x.ncols()).collect();
        let rows: Vec<usize> = (0..x.nrows()).collect();
        let mut ws = TreeWorkspace::new();
        ws.bind_bins(&bins, &cols, &rows);
        let first = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        // Second fit without rebinding still uses the bound set.
        let second = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        assert_bit_identical(&first, &second);
        ws.clear_bins();
        let third = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        assert_bit_identical(&first, &third);
    }

    #[test]
    #[should_panic(expected = "bound bins do not match")]
    fn stale_binding_shape_mismatch_panics() {
        let (x, y, _) = awkward_problem(7, 60, 4);
        let bins = Arc::new(BinSet::derive(&x));
        let mut ws = TreeWorkspace::new();
        ws.bind_bins(&bins, &[0, 1], &[0, 1, 2, 3]);
        // Fit matrix is 60 x 4, binding says 4 x 2 -> must panic loudly
        // rather than silently mis-quantize.
        let _ = DecisionTree::fit_in(&x, &y, 3, None, &mut ws);
    }

    #[test]
    fn truncation_matches_direct_fits_on_binned_trees() {
        // The depth-grid sharing path (DT HPO) over the histogram kernel.
        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned256);
        for seed in [1u64, 13, 29] {
            let (x, y, w) = awkward_problem(seed, 100, 5);
            let deep = DecisionTree::fit_deep_in(&x, &y, 7, Some(&w), &mut ws);
            for depth in 1..=7 {
                let truncated = deep.truncate(depth);
                let direct = DecisionTree::fit_in(&x, &y, depth, Some(&w), &mut ws);
                assert_bit_identical(&truncated, &direct);
            }
        }
    }

    #[test]
    fn workspace_survives_mode_switches() {
        let (x, y, w) = awkward_problem(6, 90, 5);
        let mut ws = TreeWorkspace::new();
        let first = DecisionTree::fit_in(&x, &y, 5, Some(&w), &mut ws);
        ws.set_exactness(SplitExactness::Presorted);
        let pre = DecisionTree::fit_in(&x, &y, 5, Some(&w), &mut ws);
        ws.set_exactness(SplitExactness::Binned256);
        let again = DecisionTree::fit_in(&x, &y, 5, Some(&w), &mut ws);
        assert_bit_identical(&first, &pre);
        assert_bit_identical(&first, &again);
    }

    #[test]
    fn high_cardinality_columns_are_deterministic_and_accurate() {
        // > 256 distinct values: binning is genuinely lossy here, so we
        // check determinism and that the fit is still a good classifier,
        // not bit-identity.
        let n = 600;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![t, ((i as f64) * 0.618_033_988) % 1.0]
            })
            .collect();
        let y: Vec<bool> = (0..n).map(|i| (i as f64 / n as f64) > 0.42).collect();
        let x = Matrix::from_rows(&rows);

        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned256);
        let a = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        let b = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        assert_bit_identical(&a, &b);
        let errors = x
            .rows_iter()
            .zip(&y)
            .filter(|(row, &label)| a.predict_one(row) != label)
            .count();
        // 600 rows in 256 near-equal-count bins: the decision boundary is
        // off by at most ~one bin (~3 rows).
        assert!(errors <= 4, "binned tree misclassified {errors} of {n} rows");
    }

    #[test]
    fn feature_bins_one_bin_per_distinct_value_when_small() {
        let sorted = [0.1, 0.1, 0.4, 0.4, 0.4, 0.9];
        let fb = FeatureBins::from_sorted(&sorted);
        assert_eq!(fb.n_bins(), 3);
        assert_eq!(fb.lo, vec![0.1, 0.4, 0.9]);
        assert_eq!(fb.hi, vec![0.1, 0.4, 0.9]);
        assert_eq!(fb.code_of(0.1), 0);
        assert_eq!(fb.code_of(0.4), 1);
        assert_eq!(fb.code_of(0.9), 2);
    }

    #[test]
    fn feature_bins_cap_at_max_bins_and_cover_all_values() {
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64 * 0.01).collect();
        let fb = FeatureBins::from_sorted(&sorted);
        assert!(fb.n_bins() <= MAX_BINS);
        assert!(fb.n_bins() >= MAX_BINS / 2, "bins under-used: {}", fb.n_bins());
        for &v in &sorted {
            let c = fb.code_of(v) as usize;
            assert!(fb.lo[c] <= v && v <= fb.hi[c], "value {v} outside bin {c}");
        }
        // Codes must be monotone in the value.
        for pair in sorted.windows(2) {
            assert!(fb.code_of(pair[0]) <= fb.code_of(pair[1]));
        }
    }

    #[test]
    fn exactness_fingerprints_are_distinct_and_parseable() {
        let modes =
            [SplitExactness::Binned256, SplitExactness::Binned4096, SplitExactness::Presorted];
        for (i, a) in modes.iter().enumerate() {
            for b in &modes[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
            }
        }
        for mode in modes {
            assert_eq!(SplitExactness::parse(mode.name()), Some(mode));
        }
        assert_eq!(SplitExactness::parse("binned"), Some(SplitExactness::Binned256));
        assert_eq!(SplitExactness::parse("nonsense"), None);
        assert_eq!(SplitExactness::default(), SplitExactness::Binned256);
        assert_eq!(SplitExactness::Binned256.code_width(), Some(CodeWidth::U8));
        assert_eq!(SplitExactness::Binned4096.code_width(), Some(CodeWidth::U16));
        assert_eq!(SplitExactness::Presorted.code_width(), None);
        assert_eq!(CodeWidth::U8.max_bins(), MAX_BINS);
        assert_eq!(CodeWidth::U16.max_bins(), MAX_BINS_WIDE);
    }

    /// A problem whose columns carry 300–700 distinct values: past the
    /// `u8` budget (Binned256 must quantize) but comfortably inside the
    /// `u16` one, so `Binned4096` must still be bit-exact vs presorted.
    fn mid_cardinality_problem(n: usize) -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![t, ((i as f64) * 0.618_033_988) % 1.0, ((i * i % 701) as f64) / 701.0]
            })
            .collect();
        let y: Vec<bool> = (0..n).map(|i| (i as f64 / n as f64) > 0.42).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn binned4096_is_exact_where_binned256_must_quantize() {
        let (x, y) = mid_cardinality_problem(600);
        let mut wide = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        let mut exact = TreeWorkspace::with_exactness(SplitExactness::Presorted);
        for depth in [2, 4, 7] {
            let a = DecisionTree::fit_in(&x, &y, depth, None, &mut wide);
            let b = DecisionTree::fit_in(&x, &y, depth, None, &mut exact);
            assert_bit_identical(&a, &b);
        }
    }

    #[test]
    fn wide_bound_bins_match_local_derivation_on_subsets() {
        let (x, y) = mid_cardinality_problem(500);
        let bins = Arc::new(BinSet::derive_with(&x, CodeWidth::U16));
        assert_eq!(bins.width(), CodeWidth::U16);
        let cols = vec![0usize, 2];
        let rows: Vec<usize> = (0..x.nrows()).filter(|r| r % 4 != 2).collect();
        let sub = x.select_rows_cols(&rows, &cols);
        let suby: Vec<bool> = rows.iter().map(|&r| y[r]).collect();

        let mut bound = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        bound.bind_bins(&bins, &cols, &rows);
        let mut exact = TreeWorkspace::with_exactness(SplitExactness::Presorted);
        for depth in [2, 5] {
            let a = DecisionTree::fit_in(&sub, &suby, depth, None, &mut bound);
            let b = DecisionTree::fit_in(&sub, &suby, depth, None, &mut exact);
            assert_bit_identical(&a, &b);
        }
    }

    #[test]
    #[should_panic(expected = "different code width")]
    fn binding_narrow_bins_to_a_wide_workspace_panics() {
        let (x, y, _) = awkward_problem(3, 60, 4);
        let bins = Arc::new(BinSet::derive(&x)); // u8-width set
        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        let cols: Vec<usize> = (0..x.ncols()).collect();
        let rows: Vec<usize> = (0..x.nrows()).collect();
        ws.bind_bins(&bins, &cols, &rows);
        let _ = DecisionTree::fit_in(&x, &y, 3, None, &mut ws);
    }

    #[test]
    fn hist_pool_release_restores_the_all_zero_invariant_for_wide_bins() {
        // Satellite regression: a 4096-bin buffer must come back from the
        // pool fully clean. Fit on >256-distinct-value columns (so the wide
        // layout has thousands of bins), then inspect every pooled buffer
        // and refit through the same workspace.
        let (x, y) = mid_cardinality_problem(700);
        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        let first = DecisionTree::fit_in(&x, &y, 7, None, &mut ws);
        assert!(ws.hist_stride > MAX_BINS, "wide fit should exceed the u8 stride");
        assert!(!ws.hist_pool.is_empty());
        for (s, buf) in ws.hist_pool.iter().enumerate() {
            assert!(buf.cnt.iter().all(|&c| c == 0), "slot {s}: counts not zeroed");
            assert!(buf.wtot.iter().all(|&v| v == 0.0), "slot {s}: weights not zeroed");
            assert!(buf.wpos.iter().all(|&v| v == 0.0), "slot {s}: pos weights not zeroed");
            assert!(buf.range.iter().all(|&r| r == (1, 0)), "slot {s}: range not reset");
            assert!(buf.dirty.iter().all(|&r| r == (1, 0)), "slot {s}: dirty not reset");
        }
        // A re-acquire of the same buffers must behave like fresh ones.
        let again = DecisionTree::fit_in(&x, &y, 7, None, &mut ws);
        assert_bit_identical(&first, &again);
    }

    /// A larger weighted problem for the GOSS paths: enough rows that
    /// low `min_rows` configs genuinely sample.
    fn goss_problem() -> (Matrix, Vec<bool>, Vec<f64>) {
        awkward_problem(17, 400, 6)
    }

    #[test]
    fn inactive_goss_is_bit_identical_to_no_goss() {
        // `top + rest >= 1.0` cannot drop any row, so it must run the
        // identical (sibling-subtracting) code path bit-for-bit.
        let (x, y, w) = goss_problem();
        for mode in [SplitExactness::Binned256, SplitExactness::Binned4096] {
            let mut off = TreeWorkspace::with_exactness(mode);
            let mut on = TreeWorkspace::with_exactness(mode);
            on.set_goss(Some(GossConfig::new(1.0, 1.0, 99)));
            for depth in [2, 5, 7] {
                let a = DecisionTree::fit_in(&x, &y, depth, Some(&w), &mut off);
                let b = DecisionTree::fit_in(&x, &y, depth, Some(&w), &mut on);
                assert_bit_identical(&a, &b);
            }
        }
    }

    #[test]
    fn goss_sampling_is_deterministic_per_seed_and_node() {
        let (x, y, w) = goss_problem();
        let cfg = GossConfig { top_frac: 0.3, rest_frac: 0.2, seed: 41, min_rows: 16 };
        let fit = |seed: u64| {
            let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
            ws.set_goss(Some(GossConfig { seed, ..cfg }));
            DecisionTree::fit_in(&x, &y, 6, Some(&w), &mut ws)
        };
        // Same (seed, node_id) ⇒ same sample ⇒ same tree, fit after fit.
        let a = fit(41);
        let b = fit(41);
        assert_bit_identical(&a, &b);
        // A different seed draws a different remainder sample somewhere.
        let c = fit(1777);
        assert!(
            a.nodes != c.nodes
                || a.importances.iter().zip(&c.importances).any(|(x, y)| x.to_bits() != y.to_bits()),
            "seed change did not perturb the sampled fit"
        );
    }

    #[test]
    fn goss_fit_is_thread_count_invariant() {
        // The per-node sample is a pure function of (seed, node_id, row
        // set) — no RNG stream, no traversal state — so concurrent fits on
        // any number of threads reproduce the serial tree bit-for-bit.
        let (x, y, w) = goss_problem();
        let cfg = GossConfig { top_frac: 0.25, rest_frac: 0.15, seed: 7, min_rows: 16 };
        let serial = {
            let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned256);
            ws.set_goss(Some(cfg));
            DecisionTree::fit_in(&x, &y, 6, Some(&w), &mut ws)
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned256);
                        ws.set_goss(Some(cfg));
                        DecisionTree::fit_in(&x, &y, 6, Some(&w), &mut ws)
                    })
                })
                .collect();
            for h in handles {
                let t = h.join().expect("goss fit thread");
                assert_bit_identical(&serial, &t);
            }
        });
    }

    #[test]
    fn goss_still_learns_and_pool_stays_clean() {
        // Sampled split scans must still find real structure, and the
        // per-node alloc/release discipline must leave the pool zeroed.
        let (x, y) = mid_cardinality_problem(800);
        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        ws.set_goss(Some(GossConfig { top_frac: 0.2, rest_frac: 0.1, seed: 3, min_rows: 32 }));
        let t = DecisionTree::fit_in(&x, &y, 6, None, &mut ws);
        let errors =
            x.rows_iter().zip(&y).filter(|(row, &label)| t.predict_one(row) != label).count();
        assert!(errors <= 24, "goss tree misclassified {errors} of 800 rows");
        for buf in &ws.hist_pool {
            assert!(buf.cnt.iter().all(|&c| c == 0));
            assert!(buf.wtot.iter().all(|&v| v == 0.0));
        }
        // The presorted kernel ignores GOSS: still bit-exact vs reference.
        ws.set_exactness(SplitExactness::Presorted);
        let p = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        let naive = reference::fit(&x, &y, 4, None);
        assert_bit_identical(&p, &naive);
    }

    #[test]
    fn goss_kept_frac_and_activity_rules() {
        assert!(GossConfig::new(0.2, 0.1, 0).active());
        assert!(!GossConfig::new(1.0, 1.0, 0).active());
        assert!(!GossConfig::new(0.6, 0.4, 0).active());
        assert_eq!(GossConfig::new(0.2, 0.1, 0).kept_frac(), 0.30000000000000004);
        assert_eq!(GossConfig::new(1.0, 1.0, 0).kept_frac(), 1.0);
        assert_eq!(GossConfig::new(0.2, 0.1, 0).min_rows, GOSS_MIN_ROWS);
    }
}
