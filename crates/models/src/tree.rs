//! CART decision tree with Gini impurity, built by a presorted-column kernel.
//!
//! Depth-limited binary tree over continuous features. Candidate thresholds
//! are the midpoints between consecutive distinct values, evaluated in O(1)
//! each via running prefix sums. Feature importances accumulate the
//! instance-weighted impurity decrease per feature, normalized to sum to 1 —
//! the same notion scikit-learn exposes.
//!
//! # The presorted kernel
//!
//! The classic CART bottleneck is re-sorting every feature column at every
//! node: O(nodes × d × n log n) with fresh allocations throughout. This
//! implementation sorts each feature's row order **once per fit** (a stable
//! argsort by value) and then *stably partitions* the per-feature sorted
//! index lists down to the children after each split — scikit-learn's old
//! `presort=True` strategy. Every node's split scan is then O(d × n_node)
//! with zero sorts, and all scratch (per-feature orders, partition buffers,
//! the row-ascending node sets) lives in a reusable [`TreeWorkspace`], so a
//! fit performs no per-node allocation.
//!
//! **Bit-identity contract.** The kernel is bit-identical to the naive
//! per-node splitter (kept as a `#[cfg(test)]` reference below): a stable
//! sort of a row-ascending index list orders ties by row, and a stable
//! partition preserves exactly that order on both sides, so every node
//! scans values, accumulates prefix sums, compares candidate gains, and
//! computes leaf probabilities in the *identical floating-point order* the
//! naive builder would.
//!
//! # Depth truncation
//!
//! Greedy CART's split sequence is independent of `max_depth` — depth only
//! gates *stopping*. [`DecisionTree::fit_deep_in`] therefore fits once at
//! the deepest depth and annotates every node with its creation depth and
//! impurity-decrease contribution; [`DeepTree::truncate`] then derives the
//! tree for any shallower depth in O(nodes), bit-identical to a direct fit
//! at that depth (same preorder arena, same probabilities, importances
//! reconstructed from the recorded gains in the same accumulation order).
//! The HPO grid exploits this to turn 7 depth fits into 1 fit + 6
//! truncations.

use dfs_linalg::sort::{stable_partition_in_place, stable_sort_indices_by_key};
use dfs_linalg::Matrix;

/// Nodes stop splitting below this many instances.
const MIN_SAMPLES_SPLIT: usize = 4;

/// A tree node (arena storage; `usize` child links).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node carrying `P(y = 1)` among its training instances.
    Leaf {
        /// Positive-class probability at this leaf.
        proba: f64,
    },
    /// Internal test `x[feature] <= threshold` → left, else right.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child (`<=`).
        left: usize,
        /// Arena index of the right child (`>`).
        right: usize,
    },
}

/// Work counters of one kernel fit (recorded on [`TreeWorkspace`] and on
/// [`DeepTree`]); callers surface them as `tree.nodes` / `split.scans`
/// observability counters at the fit level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitStats {
    /// Nodes in the arena (leaves included).
    pub nodes: u64,
    /// Feature segments scanned for split candidates.
    pub split_scans: u64,
}

impl FitStats {
    /// Element-wise accumulation (used when summing per-tree stats).
    pub fn merge(&mut self, other: FitStats) {
        self.nodes += other.nodes;
        self.split_scans += other.split_scans;
    }

    /// Emits the fit-level `tree.nodes` / `split.scans` observability
    /// counters. Call on the fit's *caller* thread only — never inside
    /// parallel workers, which may have no collector and would make traces
    /// thread-count-dependent.
    pub fn record(&self) {
        dfs_obs::counter("tree.nodes", self.nodes);
        dfs_obs::counter("split.scans", self.split_scans);
    }
}

/// Reusable scratch for the presorted kernel: per-feature sorted row
/// orders, the row-ascending node sets, partition buffers, and the unit
/// weight vector. After the first fit of a given shape, subsequent fits
/// through the same workspace allocate nothing.
#[derive(Debug, Default)]
pub struct TreeWorkspace {
    /// Flattened `d × n` per-feature sorted row orders.
    order: Vec<u32>,
    /// Node row sets in row-ascending order, partitioned in place.
    rows: Vec<u32>,
    /// Stable-partition holding buffer.
    scratch: Vec<u32>,
    /// Column gather buffer for the presort keys.
    col: Vec<f64>,
    /// All-ones weights when the caller passes none.
    unit_w: Vec<f64>,
    /// Counters of the most recent fit through this workspace.
    last_stats: FitStats,
}

impl TreeWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Work counters of the most recent fit through this workspace.
    pub fn last_stats(&self) -> FitStats {
        self.last_stats
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    importances: Vec<f64>,
    max_depth: usize,
}

impl DecisionTree {
    /// Fits a depth-limited CART tree.
    pub fn fit(x: &Matrix, y: &[bool], max_depth: usize) -> Self {
        Self::fit_weighted(x, y, max_depth, None)
    }

    /// Fits with optional per-instance weights (used for class balancing by
    /// the random forest).
    pub fn fit_weighted(x: &Matrix, y: &[bool], max_depth: usize, weights: Option<&[f64]>) -> Self {
        let mut ws = TreeWorkspace::default();
        Self::fit_in(x, y, max_depth, weights, &mut ws)
    }

    /// [`DecisionTree::fit_weighted`] through a caller-owned workspace:
    /// repeated fits (forest trees, wrapper evaluations) reuse every
    /// buffer and perform no steady-state allocation beyond the arena.
    pub fn fit_in(
        x: &Matrix,
        y: &[bool],
        max_depth: usize,
        weights: Option<&[f64]>,
        ws: &mut TreeWorkspace,
    ) -> Self {
        let max_depth = max_depth.max(1);
        let deep = run_kernel(x, y, max_depth, weights, ws);
        let importances = deep.importances_at(max_depth);
        DecisionTree { nodes: deep.nodes, importances, max_depth }
    }

    /// Fits the full-depth tree once, annotated for O(nodes) derivation of
    /// every shallower tree via [`DeepTree::truncate`].
    pub fn fit_deep_in(
        x: &Matrix,
        y: &[bool],
        max_depth: usize,
        weights: Option<&[f64]>,
        ws: &mut TreeWorkspace,
    ) -> DeepTree {
        run_kernel(x, y, max_depth.max(1), weights, ws)
    }

    /// Assembles a tree from raw parts (used by the DP random tree).
    pub fn from_parts(nodes: Vec<Node>, importances: Vec<f64>, max_depth: usize) -> Self {
        assert!(!nodes.is_empty(), "DecisionTree: empty node arena");
        DecisionTree { nodes, importances, max_depth }
    }

    /// Normalized impurity-decrease importances (sum to 1 when nonzero).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Depth limit the tree was trained with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `P(y = 1 | x)` from the reached leaf.
    pub fn proba_one(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { proba } => return *proba,
                Node::Split { feature, threshold, left, right } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicted label at the 0.5 threshold.
    pub fn predict_one(&self, x: &[f64]) -> bool {
        self.proba_one(x) > 0.5
    }
}

/// A full-depth fit annotated with per-node creation depth, node
/// probability, and impurity-decrease contribution — everything needed to
/// derive any shallower tree in O(nodes) without refitting.
#[derive(Debug, Clone)]
pub struct DeepTree {
    /// Preorder node arena of the full-depth tree.
    nodes: Vec<Node>,
    /// Creation depth per node (root = 0).
    depth: Vec<u32>,
    /// `P(y = 1)` among the training instances reaching each node.
    proba: Vec<f64>,
    /// `gain × w_total` per split node (0 for leaves): the exact term the
    /// builder adds to that feature's importance.
    gain_w: Vec<f64>,
    n_features: usize,
    max_depth: usize,
    stats: FitStats,
}

impl DeepTree {
    /// The depth this tree was fitted at.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Nodes in the full-depth arena.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Work counters of the underlying kernel fit.
    pub fn stats(&self) -> FitStats {
        self.stats
    }

    /// Total impurity-decrease contribution of splits created at each
    /// depth `0..max_depth` (the per-depth gain totals behind truncation).
    pub fn gain_by_depth(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.max_depth];
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node, Node::Split { .. }) {
                totals[self.depth[i] as usize] += self.gain_w[i];
            }
        }
        totals
    }

    /// Derives the tree a direct fit at `max_depth = depth` would produce,
    /// bit-identically, in O(nodes): split nodes created at `depth` become
    /// leaves carrying their recorded probability, deeper subtrees are
    /// dropped, and importances are re-accumulated from the recorded gains
    /// in the original (preorder) order.
    ///
    /// # Panics
    /// Panics when `depth` exceeds the fitted depth — the annotation only
    /// records what the deep fit explored.
    pub fn truncate(&self, depth: usize) -> DecisionTree {
        let depth = depth.max(1);
        assert!(
            depth <= self.max_depth,
            "DeepTree::truncate: depth {depth} exceeds fitted depth {}",
            self.max_depth
        );
        let mut nodes = Vec::with_capacity(self.nodes.len());
        self.copy_subtree(0, depth, &mut nodes);
        DecisionTree { nodes, importances: self.importances_at(depth), max_depth: depth }
    }

    /// Preorder copy of the subtree at `i` with split nodes at
    /// `depth >= cutoff` demoted to leaves. Returns the new arena index.
    fn copy_subtree(&self, i: usize, cutoff: usize, out: &mut Vec<Node>) -> usize {
        match self.nodes[i] {
            Node::Leaf { proba } => {
                out.push(Node::Leaf { proba });
                out.len() - 1
            }
            Node::Split { feature, threshold, left, right } => {
                if self.depth[i] as usize >= cutoff {
                    out.push(Node::Leaf { proba: self.proba[i] });
                    out.len() - 1
                } else {
                    // Reserve this node's slot before the children, exactly
                    // like the builder does.
                    let me = out.len();
                    out.push(Node::Leaf { proba: self.proba[i] });
                    let l = self.copy_subtree(left, cutoff, out);
                    let r = self.copy_subtree(right, cutoff, out);
                    out[me] = Node::Split { feature, threshold, left: l, right: r };
                    me
                }
            }
        }
    }

    /// Normalized importances of the depth-`cutoff` truncation. The arena
    /// is in preorder — the order the builder accumulates importances in —
    /// so a linear scan reproduces the identical floating-point sums.
    /// Splits inside dropped subtrees sit at depth > `cutoff` and are
    /// skipped by the same depth test that drops them.
    fn importances_at(&self, cutoff: usize) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Split { feature, .. } = node {
                if (self.depth[i] as usize) < cutoff {
                    imp[*feature] += self.gain_w[i];
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

/// Runs the presorted kernel at `max_depth` (already clamped ≥ 1) and
/// returns the annotated full arena. Scratch comes from — and returns to —
/// `ws`; `ws.last_stats` is refreshed.
fn run_kernel(
    x: &Matrix,
    y: &[bool],
    max_depth: usize,
    weights: Option<&[f64]>,
    ws: &mut TreeWorkspace,
) -> DeepTree {
    let (n, d) = x.shape();
    assert_eq!(n, y.len(), "DecisionTree: row/label mismatch");
    assert!(n > 0, "DecisionTree: empty training set");
    assert!(n <= u32::MAX as usize, "DecisionTree: too many rows for the u32 kernel");

    let mut unit_w = std::mem::take(&mut ws.unit_w);
    let w: &[f64] = match weights {
        Some(w) => {
            assert_eq!(w.len(), n, "DecisionTree: weight length mismatch");
            w
        }
        None => {
            unit_w.clear();
            unit_w.resize(n, 1.0);
            &unit_w
        }
    };

    // Presort: each feature's row order, stably sorted by value. A node's
    // segment of every order array is the node's rows sorted by that
    // feature, ties in row-ascending order — the same order the naive
    // builder's stable per-node sort would produce.
    let mut order = std::mem::take(&mut ws.order);
    let mut col = std::mem::take(&mut ws.col);
    order.clear();
    order.reserve(d * n);
    for f in 0..d {
        let start = order.len();
        order.extend(0..n as u32);
        col.clear();
        col.extend((0..n).map(|i| x[(i, f)]));
        stable_sort_indices_by_key(&mut order[start..], &col);
    }
    let mut rows = std::mem::take(&mut ws.rows);
    rows.clear();
    rows.extend(0..n as u32);

    let mut kernel = Kernel {
        x,
        y,
        w,
        n,
        d,
        max_depth,
        order,
        rows,
        scratch: std::mem::take(&mut ws.scratch),
        nodes: Vec::new(),
        depth: Vec::new(),
        proba: Vec::new(),
        gain_w: Vec::new(),
        stats: FitStats::default(),
    };
    // Root class counts, accumulated in row-ascending order (the same
    // order the naive builder's `weighted_counts` walks).
    let mut w_pos = 0.0;
    let mut w_total = 0.0;
    for i in 0..n {
        w_total += w[i];
        if y[i] {
            w_pos += w[i];
        }
    }
    kernel.build(0, n, 0, w_pos, w_total);
    let Kernel { order, rows, scratch, nodes, depth, proba, gain_w, stats, .. } = kernel;

    // Hand the buffers back for the next fit.
    ws.order = order;
    ws.rows = rows;
    ws.scratch = scratch;
    ws.col = col;
    ws.unit_w = unit_w;
    ws.last_stats = stats;

    DeepTree { nodes, depth, proba, gain_w, n_features: d, max_depth, stats }
}

/// The presorted builder: every node owns the segment `[lo, hi)` of the
/// shared `rows` array (row-ascending) and of each feature's `order` array
/// (value-sorted), and hands disjoint subsegments to its children by
/// stable partition.
struct Kernel<'a> {
    x: &'a Matrix,
    y: &'a [bool],
    w: &'a [f64],
    n: usize,
    d: usize,
    max_depth: usize,
    order: Vec<u32>,
    rows: Vec<u32>,
    scratch: Vec<u32>,
    nodes: Vec<Node>,
    depth: Vec<u32>,
    proba: Vec<f64>,
    gain_w: Vec<f64>,
    stats: FitStats,
}

impl Kernel<'_> {
    /// Builds the subtree over segment `[lo, hi)`, returning its arena
    /// index. `w_pos` / `w_total` are this node's class counts, accumulated
    /// by the parent's partition in this node's row-ascending order (so
    /// they carry the exact bits a fresh scan would produce).
    fn build(&mut self, lo: usize, hi: usize, depth: usize, w_pos: f64, w_total: f64) -> usize {
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        let node_gini = gini(w_pos, w_total);

        if depth >= self.max_depth
            || hi - lo < MIN_SAMPLES_SPLIT
            || node_gini <= dfs_linalg::EPS
        {
            return self.push(Node::Leaf { proba }, depth, proba, 0.0);
        }

        match self.best_split(lo, hi, node_gini, w_pos, w_total) {
            None => self.push(Node::Leaf { proba }, depth, proba, 0.0),
            Some(split) => {
                let gain_w = split.gain * w_total;
                let (nl, left_counts, right_counts) =
                    self.partition(lo, hi, split.feature, split.threshold);
                // Reserve this node's slot before recursing.
                let me = self.push(Node::Leaf { proba }, depth, proba, gain_w);
                let left = self.build(lo, lo + nl, depth + 1, left_counts.0, left_counts.1);
                let right = self.build(lo + nl, hi, depth + 1, right_counts.0, right_counts.1);
                self.nodes[me] =
                    Node::Split { feature: split.feature, threshold: split.threshold, left, right };
                me
            }
        }
    }

    fn push(&mut self, node: Node, depth: usize, proba: f64, gain_w: f64) -> usize {
        self.nodes.push(node);
        self.depth.push(depth as u32);
        self.proba.push(proba);
        self.gain_w.push(gain_w);
        self.stats.nodes += 1;
        self.nodes.len() - 1
    }

    /// Scans every feature's presorted segment for the best threshold.
    /// Identical candidate enumeration and floating-point order to the
    /// naive splitter: features ascending, positions ascending, running
    /// prefix sums accumulated one element at a time.
    fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        node_gini: f64,
        w_pos: f64,
        w_total: f64,
    ) -> Option<SplitChoice> {
        let len = hi - lo;
        let mut best: Option<SplitChoice> = None;
        for feature in 0..self.d {
            self.stats.split_scans += 1;
            let seg = &self.order[feature * self.n + lo..feature * self.n + hi];
            let mut prev = self.x[(seg[0] as usize, feature)];
            if prev == self.x[(seg[len - 1] as usize, feature)] {
                continue; // constant feature on this node
            }
            // Running prefix sums over the sorted order: after step k they
            // cover seg[0..k], matching the naive prefix arrays bit-for-bit.
            let mut left_total = 0.0;
            let mut left_pos = 0.0;
            for k in 1..len {
                let r = seg[k - 1] as usize;
                let wr = self.w[r];
                left_total += wr;
                if self.y[r] {
                    left_pos += wr;
                }
                // Candidate boundary: every position where the value changes.
                let v = self.x[(seg[k] as usize, feature)];
                if v > prev {
                    let threshold = 0.5 * (prev + v);
                    let right_total = w_total - left_total;
                    if left_total > 0.0 && right_total > 0.0 {
                        let right_pos = w_pos - left_pos;
                        let child = (left_total * gini(left_pos, left_total)
                            + right_total * gini(right_pos, right_total))
                            / w_total;
                        // Like scikit-learn, zero-gain splits are allowed
                        // (depth and purity are the stopping rules) — this
                        // is what lets a depth-2 tree solve XOR, whose root
                        // split has exactly zero Gini gain.
                        let gain = (node_gini - child).max(0.0);
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(SplitChoice { feature, threshold, gain });
                        }
                    }
                }
                prev = v;
            }
        }
        best
    }

    /// Stably partitions the node's segment of `rows` and of every
    /// feature's order array by the chosen split, accumulating each child's
    /// class counts in that child's row-ascending order along the way.
    /// Returns `(left_len, (left_pos, left_total), (right_pos, right_total))`.
    fn partition(
        &mut self,
        lo: usize,
        hi: usize,
        feature: usize,
        threshold: f64,
    ) -> (usize, (f64, f64), (f64, f64)) {
        let x = self.x;
        let mut left_pos = 0.0;
        let mut left_total = 0.0;
        let mut right_pos = 0.0;
        let mut right_total = 0.0;
        // Manual stable partition of the row-ascending set so the count
        // accumulators see each child's rows in exactly the order a fresh
        // `weighted_counts` scan of that child would.
        self.scratch.clear();
        let seg = &mut self.rows[lo..hi];
        let mut write = 0usize;
        for read in 0..seg.len() {
            let r = seg[read];
            let ri = r as usize;
            let wr = self.w[ri];
            if x[(ri, feature)] <= threshold {
                seg[write] = r;
                write += 1;
                left_total += wr;
                if self.y[ri] {
                    left_pos += wr;
                }
            } else {
                self.scratch.push(r);
                right_total += wr;
                if self.y[ri] {
                    right_pos += wr;
                }
            }
        }
        seg[write..].copy_from_slice(&self.scratch);

        for f in 0..self.d {
            let seg = &mut self.order[f * self.n + lo..f * self.n + hi];
            stable_partition_in_place(seg, &mut self.scratch, |&r| {
                x[(r as usize, feature)] <= threshold
            });
        }
        (write, (left_pos, left_total), (right_pos, right_total))
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Gini impurity of a (weighted) binary node.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-kernel naive splitter, kept verbatim as the bit-identity
    /// reference: per-node gather + stable sort + prefix arrays. The only
    /// change from the historical builder is that the node's class counts
    /// are computed once in `build` and passed to `best_split` (the sums
    /// are identical either way).
    mod reference {
        use super::super::*;

        pub fn fit(
            x: &Matrix,
            y: &[bool],
            max_depth: usize,
            weights: Option<&[f64]>,
        ) -> DecisionTree {
            let (n, d) = x.shape();
            assert_eq!(n, y.len());
            assert!(n > 0);
            let max_depth = max_depth.max(1);
            let w: Vec<f64> = match weights {
                Some(w) => w.to_vec(),
                None => vec![1.0; n],
            };
            let mut builder = Builder {
                x,
                y,
                w: &w,
                nodes: Vec::new(),
                importances: vec![0.0; d],
                max_depth,
            };
            let all: Vec<usize> = (0..n).collect();
            builder.build(&all, 0);
            let total: f64 = builder.importances.iter().sum();
            if total > 0.0 {
                for imp in &mut builder.importances {
                    *imp /= total;
                }
            }
            DecisionTree {
                nodes: builder.nodes,
                importances: builder.importances,
                max_depth,
            }
        }

        struct Builder<'a> {
            x: &'a Matrix,
            y: &'a [bool],
            w: &'a [f64],
            nodes: Vec<Node>,
            importances: Vec<f64>,
            max_depth: usize,
        }

        impl Builder<'_> {
            fn build(&mut self, idx: &[usize], depth: usize) -> usize {
                let (w_pos, w_total) = self.weighted_counts(idx);
                let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
                let node_gini = gini(w_pos, w_total);

                if depth >= self.max_depth
                    || idx.len() < MIN_SAMPLES_SPLIT
                    || node_gini <= dfs_linalg::EPS
                {
                    return self.push(Node::Leaf { proba });
                }

                match self.best_split(idx, node_gini, w_pos, w_total) {
                    None => self.push(Node::Leaf { proba }),
                    Some(split) => {
                        self.importances[split.feature] += split.gain * w_total;
                        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                            .iter()
                            .partition(|&&i| self.x[(i, split.feature)] <= split.threshold);
                        let me = self.push(Node::Leaf { proba });
                        let left = self.build(&left_idx, depth + 1);
                        let right = self.build(&right_idx, depth + 1);
                        self.nodes[me] = Node::Split {
                            feature: split.feature,
                            threshold: split.threshold,
                            left,
                            right,
                        };
                        me
                    }
                }
            }

            fn push(&mut self, node: Node) -> usize {
                self.nodes.push(node);
                self.nodes.len() - 1
            }

            fn weighted_counts(&self, idx: &[usize]) -> (f64, f64) {
                let mut pos = 0.0;
                let mut total = 0.0;
                for &i in idx {
                    total += self.w[i];
                    if self.y[i] {
                        pos += self.w[i];
                    }
                }
                (pos, total)
            }

            fn best_split(
                &self,
                idx: &[usize],
                node_gini: f64,
                w_pos: f64,
                w_total: f64,
            ) -> Option<SplitChoice> {
                let d = self.x.ncols();
                let mut best: Option<SplitChoice> = None;
                let mut values: Vec<(f64, f64, bool)> = Vec::with_capacity(idx.len());
                for feature in 0..d {
                    values.clear();
                    values.extend(
                        idx.iter().map(|&i| (self.x[(i, feature)], self.w[i], self.y[i])),
                    );
                    values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
                    if values.first().map(|v| v.0) == values.last().map(|v| v.0) {
                        continue;
                    }
                    let len = values.len();
                    let mut prefix_pos = vec![0.0; len + 1];
                    let mut prefix_total = vec![0.0; len + 1];
                    for (k, v) in values.iter().enumerate() {
                        prefix_total[k + 1] = prefix_total[k] + v.1;
                        prefix_pos[k + 1] = prefix_pos[k] + if v.2 { v.1 } else { 0.0 };
                    }
                    for k in (1..len).filter(|&k| values[k].0 > values[k - 1].0) {
                        let threshold = 0.5 * (values[k - 1].0 + values[k].0);
                        let left_total = prefix_total[k];
                        let right_total = w_total - left_total;
                        if left_total <= 0.0 || right_total <= 0.0 {
                            continue;
                        }
                        let left_pos = prefix_pos[k];
                        let right_pos = w_pos - left_pos;
                        let child = (left_total * gini(left_pos, left_total)
                            + right_total * gini(right_pos, right_total))
                            / w_total;
                        let gain = (node_gini - child).max(0.0);
                        if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                            best = Some(SplitChoice { feature, threshold, gain });
                        }
                    }
                }
                best
            }
        }
    }

    fn assert_bit_identical(a: &DecisionTree, b: &DecisionTree) {
        assert_eq!(a.nodes, b.nodes, "node arenas differ");
        assert_eq!(a.max_depth, b.max_depth);
        assert_eq!(a.importances.len(), b.importances.len());
        for (i, (x, y)) in a.importances.iter().zip(&b.importances).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "importance {i}: {x} vs {y}");
        }
    }

    /// Deterministic data generator exercising the awkward cases: duplicate
    /// values (quantized columns), constant features, and non-uniform
    /// instance weights.
    fn awkward_problem(seed: u64, n: usize, d: usize) -> (Matrix, Vec<bool>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut w = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for f in 0..d {
                let v = if f == d - 1 {
                    0.37 // constant feature
                } else {
                    // Quantize to force duplicate values and ties.
                    ((next() % 7) as f64) / 7.0
                };
                row.push(v);
            }
            let label = (row[0] + row[1 % d] > 0.9) ^ (next() % 11 == 0);
            y.push(label);
            w.push(match next() % 4 {
                0 => 0.25,
                1 => 1.0,
                2 => 2.5,
                _ => 10.0,
            });
            rows.push(row);
        }
        (Matrix::from_rows(&rows), y, w)
    }

    /// `y = (x0 > 0.5) AND (x1 > 0.5)` — solvable exactly by greedy CART at
    /// depth 2 (unlike balanced XOR, whose root split has zero Gini gain and
    /// defeats any greedy splitter, scikit-learn included).
    fn and_problem() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let ja = 0.05 * ((i as f64 * 0.37) % 1.0);
            let jb = 0.05 * ((i as f64 * 0.73) % 1.0);
            rows.push(vec![a * 0.9 + ja, b * 0.9 + jb]);
            y.push(a > 0.5 && b > 0.5);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        let (x, y) = and_problem();
        let t = DecisionTree::fit(&x, &y, 2);
        for (row, &label) in x.rows_iter().zip(&y) {
            assert_eq!(t.predict_one(row), label, "row {row:?}");
        }
    }

    #[test]
    fn depth_one_stump_cannot_solve_conjunction() {
        let (x, y) = and_problem();
        let t = DecisionTree::fit(&x, &y, 1);
        let errors = x
            .rows_iter()
            .zip(&y)
            .filter(|(row, &label)| t.predict_one(row) != label)
            .count();
        assert!(errors >= 15, "stump should fail on AND, errors = {errors}");
    }

    #[test]
    fn importances_sum_to_one_and_pick_signal() {
        // Only feature 1 matters.
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i as f64 * 0.17) % 1.0, if i % 2 == 0 { 0.2 } else { 0.8 }]).collect();
        let y: Vec<bool> = (0..60).map(|i| i % 2 == 1).collect();
        let t = DecisionTree::fit(&Matrix::from_rows(&rows), &y, 3);
        let imp = t.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.9, "importances {imp:?}");
    }

    #[test]
    fn pure_node_is_a_single_leaf() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.5], vec![0.9]]);
        let t = DecisionTree::fit(&x, &[true, true, true], 5);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.predict_one(&[0.3]));
    }

    #[test]
    fn weighted_fit_shifts_the_decision() {
        // Same data, but weight the positive class heavily -> ambiguous
        // region should flip to positive.
        let x = Matrix::from_rows(&[
            vec![0.4],
            vec![0.45],
            vec![0.5],
            vec![0.55],
            vec![0.6],
            vec![0.65],
        ]);
        let y = vec![false, false, false, true, true, true];
        let heavy_pos = vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        let t = DecisionTree::fit_weighted(&x, &y, 1, Some(&heavy_pos));
        // The stump must still separate cleanly at ~0.525.
        assert!(!t.predict_one(&[0.4]));
        assert!(t.predict_one(&[0.6]));
    }

    #[test]
    fn probabilities_reflect_leaf_composition() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.2], vec![0.3], vec![0.9]]);
        let y = vec![true, true, false, false];
        // Depth 1: left leaf (low x) is 2/3 positive if split lands at ~0.6.
        let t = DecisionTree::fit(&x, &y, 1);
        let p = t.proba_one(&[0.15]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = and_problem();
        assert_eq!(DecisionTree::fit(&x, &y, 4), DecisionTree::fit(&x, &y, 4));
    }

    #[test]
    fn presorted_kernel_matches_naive_reference_on_clean_data() {
        let (x, y) = and_problem();
        for depth in 1..=5 {
            let kernel = DecisionTree::fit(&x, &y, depth);
            let naive = reference::fit(&x, &y, depth, None);
            assert_bit_identical(&kernel, &naive);
        }
    }

    #[test]
    fn presorted_kernel_matches_naive_reference_on_awkward_data() {
        // Duplicate values, constant features, weighted rows, many seeds.
        let mut ws = TreeWorkspace::new();
        for seed in 0..12u64 {
            let (x, y, w) = awkward_problem(seed, 90 + (seed as usize % 3) * 17, 5);
            for (depth, weights) in [(1, None), (3, Some(&w)), (6, None), (7, Some(&w))] {
                let weights = weights.map(|w| w.as_slice());
                let kernel = DecisionTree::fit_in(&x, &y, depth, weights, &mut ws);
                let naive = reference::fit(&x, &y, depth, weights);
                assert_bit_identical(&kernel, &naive);
            }
        }
    }

    #[test]
    fn truncation_matches_direct_fits_at_every_depth() {
        let mut ws = TreeWorkspace::new();
        for seed in [3u64, 8, 21] {
            let (x, y, w) = awkward_problem(seed, 110, 4);
            for weights in [None, Some(w.as_slice())] {
                let deep = DecisionTree::fit_deep_in(&x, &y, 7, weights, &mut ws);
                for depth in 1..=7 {
                    let truncated = deep.truncate(depth);
                    let direct = DecisionTree::fit_in(&x, &y, depth, weights, &mut ws);
                    assert_bit_identical(&truncated, &direct);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds fitted depth")]
    fn truncation_beyond_fitted_depth_panics() {
        let (x, y) = and_problem();
        let mut ws = TreeWorkspace::new();
        let deep = DecisionTree::fit_deep_in(&x, &y, 3, None, &mut ws);
        let _ = deep.truncate(4);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_and_tracks_stats() {
        let (x, y) = and_problem();
        let mut ws = TreeWorkspace::new();
        let first = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        let stats = ws.last_stats();
        assert_eq!(stats.nodes, first.n_nodes() as u64);
        assert!(stats.split_scans > 0);
        // A different fit in between must not perturb a repeat fit.
        let (x2, y2, w2) = awkward_problem(5, 60, 3);
        let _ = DecisionTree::fit_in(&x2, &y2, 6, Some(&w2), &mut ws);
        let again = DecisionTree::fit_in(&x, &y, 4, None, &mut ws);
        assert_bit_identical(&first, &again);
    }

    #[test]
    fn gain_by_depth_covers_all_importance_mass() {
        let (x, y, _) = awkward_problem(9, 120, 4);
        let mut ws = TreeWorkspace::new();
        let deep = DecisionTree::fit_deep_in(&x, &y, 5, None, &mut ws);
        let by_depth = deep.gain_by_depth();
        assert_eq!(by_depth.len(), 5);
        let from_depths: f64 = by_depth.iter().sum();
        let from_nodes: f64 = deep.gain_w.iter().sum();
        assert!((from_depths - from_nodes).abs() < 1e-12);
    }
}
