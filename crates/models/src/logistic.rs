//! L2-regularized logistic regression trained by full-batch gradient descent.
//!
//! Matches scikit-learn's parameterization: the objective is
//! `Σ_i log(1 + exp(−ỹ_i (w·x_i + b))) + ||w||² / (2C)` with ỹ ∈ {−1, +1}.
//! Training uses gradient descent with a bold-driver step-size adaptation,
//! which converges reliably on the workspace's min–max-scaled features.

use dfs_linalg::{axpy, dot, log1p_exp, sigmoid, Matrix};

/// A trained logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

/// Internal training configuration (fixed; exposed knobs are `c` only, like
/// the paper's HPO grid).
const MAX_EPOCHS: usize = 120;
const INIT_LR: f64 = 2.0;
const TOL: f64 = 1e-7;

impl LogisticRegression {
    /// Fits the model with inverse regularization strength `c`, starting
    /// from the zero solution.
    pub fn fit(x: &Matrix, y: &[bool], c: f64) -> Self {
        let d = x.ncols();
        Self::fit_from(x, y, c, &vec![0.0; d], 0.0)
    }

    /// Fits from an explicit initial solution (warm start): the descent
    /// begins at `(init_w, init_b)` instead of zeros. With the zero
    /// initializer this is exactly [`LogisticRegression::fit`] — same
    /// epochs, same step-size schedule, bit-identical result.
    pub fn fit_from(x: &Matrix, y: &[bool], c: f64, init_w: &[f64], init_b: f64) -> Self {
        assert!(c > 0.0, "LogisticRegression: C must be positive");
        let (n, d) = x.shape();
        assert_eq!(n, y.len(), "LogisticRegression: row/label mismatch");
        assert_eq!(d, init_w.len(), "LogisticRegression: init weight width mismatch");
        let lambda = 1.0 / (c * n.max(1) as f64); // per-instance penalty
        let mut w = init_w.to_vec();
        let mut b = init_b;
        let mut lr = INIT_LR;
        let mut prev_loss = f64::INFINITY;

        let targets: Vec<f64> = y.iter().map(|&t| if t { 1.0 } else { -1.0 }).collect();

        for _ in 0..MAX_EPOCHS {
            // Gradient of mean loss.
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            let mut loss = 0.0;
            for (row, &t) in x.rows_iter().zip(&targets) {
                let z = dot(row, &w) + b;
                loss += log1p_exp(-t * z);
                // d/dz log1p_exp(-t z) = -t * sigmoid(-t z)
                let g = -t * sigmoid(-t * z);
                // Elementwise `gw[j] += g * row[j]`, so the blocked axpy
                // changes no bits relative to the scalar loop.
                axpy(g, row, &mut gw);
                gb += g;
            }
            let nf = n as f64;
            loss = loss / nf + 0.5 * lambda * dot(&w, &w) * nf / nf;
            for (gwj, &wj) in gw.iter_mut().zip(&w) {
                *gwj = *gwj / nf + lambda * wj;
            }
            gb /= nf;

            // Bold driver: shrink on overshoot, gently grow otherwise.
            if loss > prev_loss + TOL {
                lr *= 0.5;
                if lr < 1e-4 {
                    break;
                }
            } else {
                lr *= 1.05;
            }
            if (prev_loss - loss).abs() < TOL {
                break;
            }
            prev_loss = loss;

            for (wj, gwj) in w.iter_mut().zip(&gw) {
                *wj -= lr * gwj;
            }
            b -= lr * gb;
        }

        Self { weights: w, bias: b }
    }

    /// Builds a model directly from weights (used by the DP mechanism).
    pub fn from_weights(weights: Vec<f64>, bias: f64) -> Self {
        Self { weights, bias }
    }

    /// Learned weight vector (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// `P(y = 1 | x)`.
    pub fn proba_one(&self, x: &[f64]) -> f64 {
        sigmoid(dot(x, &self.weights) + self.bias)
    }

    /// Predicted label at the 0.5 threshold.
    pub fn predict_one(&self, x: &[f64]) -> bool {
        self.proba_one(x) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_problem(n: usize) -> (Matrix, Vec<bool>) {
        // y = [x0 > x1], clean.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i as f64 * 0.6180339887) % 1.0;
                let b = (i as f64 * 0.3141592653) % 1.0;
                vec![a, b]
            })
            .collect();
        let y = rows.iter().map(|r| r[0] > r[1]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linear_boundary() {
        let (x, y) = linear_problem(300);
        let m = LogisticRegression::fit(&x, &y, 10.0);
        let preds: Vec<bool> = x.rows_iter().map(|r| m.predict_one(r)).collect();
        let acc = preds.iter().zip(&y).filter(|(p, a)| p == a).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // Weight signs must reflect x0 - x1 > 0.
        assert!(m.weights()[0] > 0.0 && m.weights()[1] < 0.0);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let (x, y) = linear_problem(200);
        let strong = LogisticRegression::fit(&x, &y, 0.01);
        let weak = LogisticRegression::fit(&x, &y, 100.0);
        let n_strong = dfs_linalg::norm2(strong.weights());
        let n_weak = dfs_linalg::norm2(weak.weights());
        assert!(n_strong < n_weak, "strong {n_strong} >= weak {n_weak}");
    }

    #[test]
    fn probabilities_monotone_in_score() {
        let m = LogisticRegression::from_weights(vec![2.0, -1.0], 0.1);
        let lo = m.proba_one(&[0.0, 1.0]);
        let hi = m.proba_one(&[1.0, 0.0]);
        assert!(lo < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn constant_labels_predict_constant() {
        let (x, _) = linear_problem(50);
        let y = vec![true; 50];
        let m = LogisticRegression::fit(&x, &y, 1.0);
        assert!(x.rows_iter().all(|r| m.predict_one(r)));
    }

    #[test]
    fn fit_is_deterministic() {
        let (x, y) = linear_problem(100);
        let a = LogisticRegression::fit(&x, &y, 1.0);
        let b = LogisticRegression::fit(&x, &y, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_from_zero_matches_cold_fit_bit_for_bit() {
        let (x, y) = linear_problem(120);
        let cold = LogisticRegression::fit(&x, &y, 1.0);
        let warm_zero = LogisticRegression::fit_from(&x, &y, 1.0, &[0.0, 0.0], 0.0);
        assert_eq!(cold, warm_zero);
    }

    #[test]
    fn warm_start_from_a_solution_still_classifies_well() {
        let (x, y) = linear_problem(200);
        let parent = LogisticRegression::fit(&x, &y, 1.0);
        let warm =
            LogisticRegression::fit_from(&x, &y, 1.0, parent.weights(), parent.bias());
        let preds: Vec<bool> = x.rows_iter().map(|r| warm.predict_one(r)).collect();
        let acc = preds.iter().zip(&y).filter(|(p, a)| p == a).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "warm-started accuracy {acc}");
    }
}
