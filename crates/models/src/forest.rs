//! Random forest with class balancing.
//!
//! The meta-learning DFS optimizer (paper § 6.2) uses "a random forest
//! classifier with default parameters and class balancing" to predict which
//! FS strategy will satisfy a scenario. This implementation bags
//! depth-limited CART trees over **balanced bootstraps** (equal-size
//! with-replacement samples from each class) with per-tree random feature
//! subspaces (√d features, the usual default).

use crate::tree::{BinSet, DecisionTree, FitStats, SplitExactness, TreeWorkspace};
use dfs_exec::Executor;
use dfs_linalg::rng::{derive_seed, rng_from_seed, sample_without_replacement};
use dfs_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::{Arc, Mutex};

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Balanced bootstrap (equal per-class sampling).
    pub balanced: bool,
    /// RNG seed.
    pub seed: u64,
    /// Split kernel of the member trees. Under the binned kernels
    /// (`Binned256`/`Binned4096`) the forest quantizes the dataset **once**
    /// at the kernel's code width and every tree fits from bound bin codes,
    /// skipping per-tree threshold re-derivation.
    pub exactness: SplitExactness,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            max_depth: 8,
            balanced: true,
            seed: 0,
            exactness: SplitExactness::default(),
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(Vec<usize>, DecisionTree)>, // (feature subset, tree)
    n_features: usize,
}

/// Per-tree fit scratch: the fused-gather output, the gathered labels, and
/// the presorted kernel's workspace. Pooled across trees (and threads) so
/// a 50-tree fit performs a handful of buffer allocations instead of 50.
#[derive(Default)]
struct TreeScratch {
    xs: Matrix,
    ys: Vec<bool>,
    ws: TreeWorkspace,
}

impl RandomForest {
    /// Fits the forest (sequentially; see [`RandomForest::fit_with`]).
    pub fn fit(x: &Matrix, y: &[bool], cfg: &ForestConfig) -> Self {
        Self::fit_with(x, y, cfg, &Executor::sequential())
    }

    /// Fits the forest with per-tree work routed through a shared
    /// [`Executor`].
    ///
    /// Each tree `t` draws bootstrap + feature subspace from its own RNG
    /// seeded `derive_seed(cfg.seed, t)`, so the forest is bit-identical
    /// at any thread count (trees never share a sequential RNG stream) and
    /// trees are collected in index order.
    pub fn fit_with(x: &Matrix, y: &[bool], cfg: &ForestConfig, exec: &Executor) -> Self {
        // One span for the whole forest — per-tree closures may run on
        // collector-less helper threads and record nothing, by design.
        let _g = dfs_obs::span("forest.fit");
        let (n, d) = x.shape();
        assert_eq!(n, y.len(), "RandomForest: row/label mismatch");
        assert!(n > 0, "RandomForest: empty training set");
        let subspace = ((d as f64).sqrt().ceil() as usize).clamp(1, d);

        let pos_idx: Vec<usize> = (0..n).filter(|&i| y[i]).collect();
        let neg_idx: Vec<usize> = (0..n).filter(|&i| !y[i]).collect();

        // One quantization for the whole forest: every tree's bootstrap is a
        // row/column selection of the same matrix, so trees gather codes
        // from the shared BinSet instead of re-deriving thresholds.
        let bins = cfg
            .exactness
            .code_width()
            .map(|width| Arc::new(BinSet::derive_with(x, width)));

        let tree_ids: Vec<usize> = (0..cfg.n_trees).collect();
        // Scratch pool shared across tree slots: a worker pops a buffer set
        // (or starts a fresh one), fits through it, and returns it. Pool
        // traffic affects only *which* buffers a tree reuses, never the
        // fitted tree, so the forest stays bit-identical at any thread
        // count.
        let pool: Mutex<Vec<TreeScratch>> = Mutex::new(Vec::new());
        let fitted = exec.par_map_indexed(&tree_ids, |t, _| {
            let mut rng = rng_from_seed(derive_seed(cfg.seed, t as u64));
            let sample: Vec<usize> = if cfg.balanced && !pos_idx.is_empty() && !neg_idx.is_empty()
            {
                balanced_bootstrap(&pos_idx, &neg_idx, &mut rng)
            } else {
                (0..n).map(|_| rng.random_range(0..n)).collect()
            };
            let mut features = sample_without_replacement(d, subspace, &mut rng);
            features.sort_unstable();
            let mut scratch =
                pool.lock().ok().and_then(|mut p| p.pop()).unwrap_or_default();
            // Fused gather: row bootstrap and column subspace in one pass,
            // no full-height intermediate matrix.
            x.select_rows_cols_into(&sample, &features, &mut scratch.xs);
            scratch.ys.clear();
            scratch.ys.extend(sample.iter().map(|&i| y[i]));
            scratch.ws.set_exactness(cfg.exactness);
            match &bins {
                Some(b) => scratch.ws.bind_bins(b, &features, &sample),
                None => scratch.ws.clear_bins(),
            }
            let tree =
                DecisionTree::fit_in(&scratch.xs, &scratch.ys, cfg.max_depth, None, &mut scratch.ws);
            let stats = scratch.ws.last_stats();
            if let Ok(mut p) = pool.lock() {
                p.push(scratch);
            }
            (features, tree, stats)
        });
        // Tree counters are summed from the worker returns and recorded
        // here, on the caller thread, after the join — workers may run on
        // collector-less helpers and must record nothing themselves.
        let mut total = FitStats::default();
        let trees = fitted
            .into_iter()
            .map(|(features, tree, stats)| {
                total.merge(stats);
                (features, tree)
            })
            .collect();
        total.record();
        Self { trees, n_features: d }
    }

    /// Mean positive-class probability across trees.
    pub fn proba_one(&self, x: &[f64]) -> f64 {
        self.proba_one_with(x, &mut Vec::with_capacity(16))
    }

    /// [`RandomForest::proba_one`] with a caller-owned projection buffer:
    /// per-row callers in a loop (batch prediction, attack probes) reuse
    /// one buffer instead of allocating per call.
    pub fn proba_one_with(&self, x: &[f64], projected: &mut Vec<f64>) -> f64 {
        assert_eq!(x.len(), self.n_features, "RandomForest: feature width mismatch");
        if self.trees.is_empty() {
            return 0.5;
        }
        let mut sum = 0.0;
        for (features, tree) in &self.trees {
            projected.clear();
            projected.extend(features.iter().map(|&f| x[f]));
            sum += tree.proba_one(projected);
        }
        sum / self.trees.len() as f64
    }

    /// Predicted label at the 0.5 threshold.
    pub fn predict_one(&self, x: &[f64]) -> bool {
        self.proba_one(x) > 0.5
    }

    /// Mean tree probability for every row, sharing one projection buffer
    /// across the batch.
    pub fn proba(&self, x: &Matrix) -> Vec<f64> {
        let mut projected = Vec::with_capacity(16);
        x.rows_iter().map(|r| self.proba_one_with(r, &mut projected)).collect()
    }

    /// Predicts every row (allocation-free past the output vector).
    pub fn predict(&self, x: &Matrix) -> Vec<bool> {
        let mut projected = Vec::with_capacity(16);
        x.rows_iter().map(|r| self.proba_one_with(r, &mut projected) > 0.5).collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

fn balanced_bootstrap(pos: &[usize], neg: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let per_class = pos.len().min(neg.len()).max(1);
    let mut out = Vec::with_capacity(2 * per_class);
    for _ in 0..per_class {
        out.push(pos[rng.random_range(0..pos.len())]);
        out.push(neg[rng.random_range(0..neg.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_problem() -> (Matrix, Vec<bool>) {
        // Nonlinear: positive iff the point is near the center.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i as f64 * 0.6180339887) % 1.0;
            let b = (i as f64 * 0.7548776662) % 1.0;
            rows.push(vec![a, b]);
            y.push(((a - 0.5).powi(2) + (b - 0.5).powi(2)).sqrt() < 0.25);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = ring_problem();
        let f = RandomForest::fit(&x, &y, &ForestConfig::default());
        let preds = f.predict(&x);
        let acc =
            preds.iter().zip(&y).filter(|(p, a)| p == a).count() as f64 / y.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn probabilities_average_trees() {
        let (x, y) = ring_problem();
        let f = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 10, ..Default::default() });
        for row in x.rows_iter().take(20) {
            let p = f.proba_one(row);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(f.n_trees(), 10);
    }

    #[test]
    fn balanced_forest_recalls_rare_class() {
        // 10:1 imbalance; balanced bootstraps should keep recall up.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..220 {
            let minority = i % 11 == 0;
            let base = if minority { 0.8 } else { 0.2 };
            rows.push(vec![base + 0.05 * ((i as f64 * 0.37) % 1.0)]);
            y.push(minority);
        }
        let x = Matrix::from_rows(&rows);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default());
        let recall = x
            .rows_iter()
            .zip(&y)
            .filter(|(_, &l)| l)
            .filter(|(r, _)| f.predict_one(r))
            .count() as f64
            / y.iter().filter(|&&l| l).count() as f64;
        assert!(recall > 0.9, "minority recall {recall}");
    }

    #[test]
    fn single_class_training_is_stable() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.2], vec![0.3], vec![0.4]]);
        let y = vec![true; 4];
        let f = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() });
        assert!(f.predict_one(&[0.25]));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = ring_problem();
        let cfg = ForestConfig { n_trees: 8, seed: 42, ..Default::default() };
        let a = RandomForest::fit(&x, &y, &cfg).predict(&x);
        let b = RandomForest::fit(&x, &y, &cfg).predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_proba_matches_per_row_calls_bitwise() {
        let (x, y) = ring_problem();
        let f = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 9, ..Default::default() });
        let batch = f.proba(&x);
        let preds = f.predict(&x);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(batch[i].to_bits(), f.proba_one(row).to_bits());
            assert_eq!(preds[i], f.predict_one(row));
        }
    }

    #[test]
    fn binned_forest_matches_presorted_on_low_cardinality_data() {
        // ring_problem columns have 200 distinct values (< 256) and trees
        // fit with unit weights, so the shared-BinSet path must reproduce
        // the presorted forest bit for bit — at either code width.
        let (x, y) = ring_problem();
        let presorted = ForestConfig {
            n_trees: 10,
            seed: 7,
            exactness: SplitExactness::Presorted,
            ..Default::default()
        };
        let fp = RandomForest::fit(&x, &y, &presorted);
        for mode in [SplitExactness::Binned256, SplitExactness::Binned4096] {
            let binned = ForestConfig { exactness: mode, ..presorted.clone() };
            let fb = RandomForest::fit(&x, &y, &binned);
            for row in x.rows_iter() {
                assert_eq!(
                    fb.proba_one(row).to_bits(),
                    fp.proba_one(row).to_bits(),
                    "mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        let (x, y) = ring_problem();
        let cfg = ForestConfig { n_trees: 12, seed: 9, ..Default::default() };
        let seq = RandomForest::fit(&x, &y, &cfg);
        let par = RandomForest::fit_with(&x, &y, &cfg, &Executor::new(4));
        for row in x.rows_iter() {
            assert_eq!(seq.proba_one(row).to_bits(), par.proba_one(row).to_bits());
        }
    }
}
