//! Grid-search hyperparameter optimization.
//!
//! Mirrors the paper's § 6.1: "For HPO, we optimize for F1 score using grid
//! search. For LR, we optimize the regularization strength
//! C ∈ {10^n | n ∈ [−2:3]}. For NB, we optimize the smoothing variable
//! var_smoothing ∈ [1e−12 : 1e−6]. For DT, we optimize the maximum tree
//! depth td ∈ [1:7]."

use crate::tree::{DecisionTree, TreeWorkspace};
use crate::{ModelKind, ModelSpec, TrainedModel};
use dfs_exec::Executor;
use dfs_linalg::Matrix;
use dfs_metrics::f1_score;

/// The paper's hyperparameter grid for a model family.
pub fn grid(kind: ModelKind) -> Vec<ModelSpec> {
    match kind {
        ModelKind::LogisticRegression => {
            (-2..=3).map(|n| ModelSpec::Lr { c: 10f64.powi(n) }).collect()
        }
        ModelKind::GaussianNb => {
            // Log-spaced 1e-12 .. 1e-6 (7 points).
            (-12..=-6).map(|n| ModelSpec::Nb { var_smoothing: 10f64.powi(n) }).collect()
        }
        ModelKind::DecisionTree => (1..=7).map(|d| ModelSpec::Dt { max_depth: d }).collect(),
        ModelKind::LinearSvm => (-2..=3).map(|n| ModelSpec::Svm { c: 10f64.powi(n) }).collect(),
    }
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct HpoResult {
    /// The winning hyperparameters.
    pub spec: ModelSpec,
    /// The model retrained with the winning hyperparameters.
    pub model: TrainedModel,
    /// Validation F1 of the winner.
    pub val_f1: f64,
    /// Number of grid points evaluated.
    pub evaluations: usize,
}

/// Grid-searches a model family, optimizing validation F1.
///
/// Trains each grid point on `(x_train, y_train)`, scores on
/// `(x_val, y_val)`, returns the best. Ties keep the earlier (more
/// regularized / simpler) grid point, matching grid-search convention.
pub fn grid_search(
    kind: ModelKind,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
) -> HpoResult {
    grid_search_with(kind, x_train, y_train, x_val, y_val, &Executor::sequential())
}

/// [`grid_search`] with grid points fitted through a shared [`Executor`].
///
/// Grid fits are deterministic (no RNG), so the only parallel obligation
/// is the ordered reduction: candidates are scored per-spec and then
/// folded *in grid order* with the sequential strictly-better rule, which
/// keeps tie-breaking (earlier grid point wins) bit-identical at any
/// thread count.
pub fn grid_search_with(
    kind: ModelKind,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
    exec: &Executor,
) -> HpoResult {
    grid_search_ws(kind, x_train, y_train, x_val, y_val, exec, &mut TreeWorkspace::new())
}

/// [`grid_search_with`] with tree fits routed through a caller-owned
/// [`TreeWorkspace`] (the scenario engine keeps one per evaluation slot).
///
/// For `ModelKind::DecisionTree` the grid is *not* fitted point by point:
/// greedy CART's split sequence does not depend on `max_depth` (depth only
/// gates stopping), so the deepest grid tree is fitted once and every
/// shallower grid point is derived by O(nodes) truncation
/// ([`DeepTree::truncate`](crate::tree::DeepTree::truncate)), bit-identical
/// to the 7 independent fits the naive loop performs — same winning `spec`,
/// same `val_f1` bits, same predictions, and `evaluations` still reports
/// every grid point scored.
pub fn grid_search_ws(
    kind: ModelKind,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
    exec: &Executor,
    ws: &mut TreeWorkspace,
) -> HpoResult {
    let specs = grid(kind);
    let evaluations = specs.len();
    // Span and counter at the grid level only — per-spec fits may run on
    // collector-less helper threads and record nothing, by design.
    let _g = dfs_obs::span("hpo.grid");
    dfs_obs::counter("hpo.grid_points", evaluations as u64);
    let scored = if kind == ModelKind::DecisionTree {
        score_dt_grid_by_truncation(&specs, x_train, y_train, x_val, y_val, ws)
    } else {
        exec.par_map_indexed(&specs, |_, spec| {
            let model = spec.fit(x_train, y_train);
            let f1 = f1_score(&model.predict(x_val), y_val);
            (f1, model)
        })
    };
    let mut best: Option<(f64, ModelSpec, TrainedModel)> = None;
    for (spec, (f1, model)) in specs.iter().zip(scored) {
        let better = match &best {
            None => true,
            Some((best_f1, _, _)) => f1 > *best_f1,
        };
        if better {
            best = Some((f1, spec.clone(), model));
        }
    }
    let Some((val_f1, spec, model)) = best else {
        unreachable!("grid(kind) always returns at least one spec");
    };
    HpoResult { spec, model, val_f1, evaluations }
}

/// Scores the DT depth grid from one deep fit plus per-depth truncations.
/// Runs sequentially on the calling thread (a truncation is a preorder
/// arena copy — parallelism would cost more than it saves), which also
/// makes it safe to record the fit-level tree counters here.
fn score_dt_grid_by_truncation(
    specs: &[ModelSpec],
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
    ws: &mut TreeWorkspace,
) -> Vec<(f64, TrainedModel)> {
    let depths: Vec<usize> = specs
        .iter()
        .map(|spec| match spec {
            ModelSpec::Dt { max_depth } => *max_depth,
            other => unreachable!("DT grid holds only Dt specs, found {other:?}"),
        })
        .collect();
    let deepest = depths.iter().copied().max().unwrap_or(1);
    let deep = DecisionTree::fit_deep_in(x_train, y_train, deepest, None, ws);
    deep.stats().record();
    depths
        .iter()
        .map(|&depth| {
            let model = TrainedModel::Dt(deep.truncate(depth));
            let f1 = f1_score(&model.predict(x_val), y_val);
            (f1, model)
        })
        .collect()
}

/// Fits a model either with default hyperparameters or with grid-search HPO,
/// matching the two arms of the paper's Table 3.
pub fn fit_maybe_hpo(
    kind: ModelKind,
    hpo: bool,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
) -> (ModelSpec, TrainedModel) {
    fit_maybe_hpo_with(kind, hpo, x_train, y_train, x_val, y_val, &Executor::sequential())
}

/// [`fit_maybe_hpo`] with HPO grid fits routed through `exec`.
pub fn fit_maybe_hpo_with(
    kind: ModelKind,
    hpo: bool,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
    exec: &Executor,
) -> (ModelSpec, TrainedModel) {
    fit_maybe_hpo_ws(kind, hpo, x_train, y_train, x_val, y_val, exec, &mut TreeWorkspace::new())
}

/// [`fit_maybe_hpo_with`] with tree fits routed through a caller-owned
/// [`TreeWorkspace`], so repeated evaluations reuse the kernel's scratch.
#[allow(clippy::too_many_arguments)]
pub fn fit_maybe_hpo_ws(
    kind: ModelKind,
    hpo: bool,
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
    exec: &Executor,
    ws: &mut TreeWorkspace,
) -> (ModelSpec, TrainedModel) {
    if hpo {
        let result = grid_search_ws(kind, x_train, y_train, x_val, y_val, exec, ws);
        (result.spec, result.model)
    } else {
        let spec = ModelSpec::default_for(kind);
        let model = spec.fit_ws(x_train, y_train, ws);
        if kind == ModelKind::DecisionTree {
            ws.last_stats().record();
        }
        (spec, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper() {
        let lr = grid(ModelKind::LogisticRegression);
        assert_eq!(lr.len(), 6);
        assert_eq!(lr[0], ModelSpec::Lr { c: 0.01 });
        assert_eq!(lr[5], ModelSpec::Lr { c: 1000.0 });

        let nb = grid(ModelKind::GaussianNb);
        assert_eq!(nb.len(), 7);
        assert_eq!(nb[0], ModelSpec::Nb { var_smoothing: 1e-12 });
        assert_eq!(nb[6], ModelSpec::Nb { var_smoothing: 1e-6 });

        let dt = grid(ModelKind::DecisionTree);
        assert_eq!(dt.len(), 7);
        assert_eq!(dt[0], ModelSpec::Dt { max_depth: 1 });
        assert_eq!(dt[6], ModelSpec::Dt { max_depth: 7 });
    }

    fn xorish() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..160 {
            let a = ((i % 2) as f64) * 0.8 + 0.05 * ((i as f64 * 0.37) % 1.0);
            let b = (((i / 2) % 2) as f64) * 0.8 + 0.05 * ((i as f64 * 0.73) % 1.0);
            rows.push(vec![a, b]);
            y.push((a > 0.4) != (b > 0.4));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn hpo_beats_underfit_default_on_xor() {
        let (x, y) = xorish();
        let (x_train, y_train) = (x.select_rows(&(0..120).collect::<Vec<_>>()), y[..120].to_vec());
        let (x_val, y_val) = (x.select_rows(&(120..160).collect::<Vec<_>>()), y[120..].to_vec());
        let result = grid_search(ModelKind::DecisionTree, &x_train, &y_train, &x_val, &y_val);
        // Depth 1 cannot solve XOR, the grid must pick depth >= 2.
        match result.spec {
            ModelSpec::Dt { max_depth } => assert!(max_depth >= 2, "picked depth {max_depth}"),
            other => panic!("unexpected spec {other:?}"),
        }
        assert!(result.val_f1 > 0.9, "val f1 {}", result.val_f1);
        assert_eq!(result.evaluations, 7);
    }

    #[test]
    fn parallel_grid_search_matches_sequential() {
        let (x, y) = xorish();
        let (x_train, y_train) = (x.select_rows(&(0..120).collect::<Vec<_>>()), y[..120].to_vec());
        let (x_val, y_val) = (x.select_rows(&(120..160).collect::<Vec<_>>()), y[120..].to_vec());
        for kind in [ModelKind::DecisionTree, ModelKind::LogisticRegression] {
            let seq = grid_search(kind, &x_train, &y_train, &x_val, &y_val);
            let par = grid_search_with(
                kind,
                &x_train,
                &y_train,
                &x_val,
                &y_val,
                &Executor::new(4),
            );
            assert_eq!(seq.spec, par.spec);
            assert_eq!(seq.val_f1.to_bits(), par.val_f1.to_bits());
            assert_eq!(seq.evaluations, par.evaluations);
        }
    }

    #[test]
    fn truncated_dt_grid_matches_independent_fits() {
        // The production DT grid path fits the deepest tree once and
        // truncates; this replays the pre-truncation loop (one full fit per
        // grid point, same fold rule) and demands bit-identical results.
        let (x, y) = xorish();
        let (x_train, y_train) = (x.select_rows(&(0..120).collect::<Vec<_>>()), y[..120].to_vec());
        let (x_val, y_val) = (x.select_rows(&(120..160).collect::<Vec<_>>()), y[120..].to_vec());

        let specs = grid(ModelKind::DecisionTree);
        let mut best: Option<(f64, ModelSpec, TrainedModel)> = None;
        for spec in &specs {
            let model = spec.fit(&x_train, &y_train);
            let f1 = f1_score(&model.predict(&x_val), &y_val);
            let better = best.as_ref().map(|(b, _, _)| f1 > *b).unwrap_or(true);
            if better {
                best = Some((f1, spec.clone(), model));
            }
        }
        let (naive_f1, naive_spec, naive_model) = best.expect("non-empty grid");

        let fast = grid_search(ModelKind::DecisionTree, &x_train, &y_train, &x_val, &y_val);
        assert_eq!(fast.spec, naive_spec);
        assert_eq!(fast.val_f1.to_bits(), naive_f1.to_bits());
        assert_eq!(fast.evaluations, specs.len());
        assert_eq!(fast.model.predict(&x_val), naive_model.predict(&x_val));
        assert_eq!(fast.model.predict(&x_train), naive_model.predict(&x_train));
    }

    #[test]
    fn fit_maybe_hpo_dispatches() {
        let (x, y) = xorish();
        let (spec_default, _) =
            fit_maybe_hpo(ModelKind::DecisionTree, false, &x, &y, &x, &y);
        assert_eq!(spec_default, ModelSpec::default_for(ModelKind::DecisionTree));
        let (spec_hpo, model) = fit_maybe_hpo(ModelKind::DecisionTree, true, &x, &y, &x, &y);
        assert!(matches!(spec_hpo, ModelSpec::Dt { .. }));
        assert_eq!(model.predict(&x).len(), x.nrows());
    }
}
