//! Property-based tests for the classifiers.

use dfs_linalg::rng::{normal, rng_from_seed};
use dfs_linalg::Matrix;
use dfs_models::{ModelKind, ModelSpec};
use proptest::prelude::*;

/// Random two-class Gaussian problem with controllable separation.
fn make_problem(n: usize, d: usize, sep: f64, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = rng_from_seed(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2 == 0;
        for j in 0..d {
            let center = if label && j == 0 { 0.5 + sep / 2.0 } else if j == 0 { 0.5 - sep / 2.0 } else { 0.5 };
            x[(i, j)] = (center + normal(0.0, 0.12, &mut rng)).clamp(0.0, 1.0);
        }
        y.push(label);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Probabilities are in [0, 1] and consistent with predictions for every
    /// model family, on arbitrary problems.
    #[test]
    fn probabilities_and_predictions_agree(
        n in 20usize..80,
        d in 1usize..6,
        sep in 0.0..0.8f64,
        seed in 0u64..500,
    ) {
        let (x, y) = make_problem(n, d, sep, seed);
        for kind in [
            ModelKind::LogisticRegression,
            ModelKind::GaussianNb,
            ModelKind::DecisionTree,
            ModelKind::LinearSvm,
        ] {
            let m = ModelSpec::default_for(kind).fit(&x, &y);
            let proba = m.predict_proba(&x);
            let preds = m.predict(&x);
            for (p, &label) in proba.iter().zip(&preds) {
                prop_assert!((0.0..=1.0).contains(p), "{kind:?}: proba {p}");
                // Prediction = proba > 0.5 for LR/NB/DT; SVM thresholds the
                // margin at 0 which maps to proba 0.5 through the sigmoid.
                prop_assert_eq!(*p > 0.5, label, "{:?}: proba/prediction mismatch", kind);
            }
        }
    }

    /// Well-separated problems are learned nearly perfectly by every model.
    #[test]
    fn strong_separation_is_learned(n in 40usize..100, seed in 0u64..200) {
        let (x, y) = make_problem(n, 3, 0.9, seed);
        for kind in ModelKind::PRIMARY {
            let m = ModelSpec::default_for(kind).fit(&x, &y);
            let correct = m
                .predict(&x)
                .iter()
                .zip(&y)
                .filter(|(p, a)| p == a)
                .count();
            prop_assert!(
                correct as f64 / n as f64 > 0.9,
                "{kind:?} learned only {correct}/{n}"
            );
        }
    }

    /// DP variants never panic and produce valid probabilities across the
    /// ε spectrum; noise is deterministic per seed.
    #[test]
    fn dp_variants_are_well_formed(
        eps in 0.01..100.0f64,
        seed in 0u64..200,
    ) {
        let (x, y) = make_problem(60, 3, 0.6, 7);
        for kind in ModelKind::PRIMARY {
            let spec = ModelSpec::default_for(kind);
            let a = spec.fit_dp(&x, &y, eps, seed);
            let b = spec.fit_dp(&x, &y, eps, seed);
            let pa = a.predict_proba(&x);
            let pb = b.predict_proba(&x);
            prop_assert_eq!(&pa, &pb, "{:?}: DP fit not deterministic per seed", kind);
            for p in pa {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    /// Feature importances, when present, are non-negative and the DT's sum
    /// to 1 (when any split happened).
    #[test]
    fn importances_are_valid(n in 30usize..80, seed in 0u64..200) {
        let (x, y) = make_problem(n, 4, 0.7, seed);
        for kind in [ModelKind::LogisticRegression, ModelKind::DecisionTree, ModelKind::LinearSvm] {
            let m = ModelSpec::default_for(kind).fit(&x, &y);
            let imp = m.feature_importance().expect("importances present");
            prop_assert_eq!(imp.len(), 4);
            for v in &imp {
                prop_assert!(*v >= 0.0);
            }
            if kind == ModelKind::DecisionTree {
                let total: f64 = imp.iter().sum();
                prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
            }
        }
    }
}
