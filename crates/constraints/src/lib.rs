//! ML application constraints: taxonomy, constraint sets, and the search
//! objective that guides feature selection toward satisfying them.
//!
//! A *metric* (F1, equal opportunity, safety, …) becomes a *constraint* once
//! the user declares a threshold (paper § 3). This crate defines:
//!
//! - [`ConstraintKind`] and its [`Taxonomy`] — the paper's Table 1
//!   (evaluation dependence, feature-set-size dependence, required inputs);
//! - [`ConstraintSet`] — a user-declared scenario's thresholds. Min Accuracy
//!   (F1) and Max Search Time are mandatory; Max Feature Set Size, Min EO,
//!   Min Safety, and the privacy budget ε are optional;
//! - [`Evaluation`] — the measured metrics of one candidate feature subset;
//! - the aggregated squared-distance objective of Eq. 1 and its
//!   utility-maximizing extension of Eq. 2.

use std::time::Duration;

/// The constraint types of the study (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Maximum wall-clock time for the feature-subset search (mandatory).
    MaxSearchTime,
    /// Maximum number of selected features (complexity/interpretability).
    MaxFeatureSetSize,
    /// Minimum F1 score (mandatory; the paper's accuracy metric).
    MinAccuracy,
    /// Minimum equal opportunity (fairness).
    MinEqualOpportunity,
    /// Differential-privacy budget ε (satisfied by construction — the
    /// scenario trains the DP model variant).
    MinPrivacy,
    /// Minimum empirical robustness against evasion attacks.
    MinSafety,
}

/// Inputs a constraint's metric needs, per Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequiredInputs {
    /// Needs the feature values.
    pub features: bool,
    /// Needs the ground-truth target.
    pub target: bool,
    /// Needs query access to the trained model.
    pub model: bool,
    /// Needs the model's predictions.
    pub predictions: bool,
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Taxonomy {
    /// The constraint this row describes.
    pub kind: ConstraintKind,
    /// Whether checking the constraint requires training + evaluating.
    pub evaluation_dependent: bool,
    /// Correlation of satisfaction with the number of features:
    /// `+1` (helps), `-1` (hurts), `0` (none / structural).
    pub feature_dependence: i8,
    /// Inputs required to compute the metric.
    pub inputs: RequiredInputs,
}

impl ConstraintKind {
    /// The taxonomy row for this constraint (paper Table 1).
    pub fn taxonomy(self) -> Taxonomy {
        use ConstraintKind::*;
        match self {
            MaxSearchTime => Taxonomy {
                kind: self,
                evaluation_dependent: false,
                feature_dependence: 0,
                inputs: RequiredInputs::default(),
            },
            MaxFeatureSetSize => Taxonomy {
                kind: self,
                evaluation_dependent: false,
                feature_dependence: 0,
                inputs: RequiredInputs { features: true, ..Default::default() },
            },
            MinAccuracy => Taxonomy {
                kind: self,
                evaluation_dependent: true,
                feature_dependence: 1,
                inputs: RequiredInputs { target: true, predictions: true, ..Default::default() },
            },
            MinEqualOpportunity => Taxonomy {
                kind: self,
                evaluation_dependent: true,
                feature_dependence: -1,
                inputs: RequiredInputs { features: true, target: true, predictions: true, ..Default::default() },
            },
            MinPrivacy => Taxonomy {
                kind: self,
                evaluation_dependent: false,
                feature_dependence: -1,
                inputs: RequiredInputs::default(),
            },
            MinSafety => Taxonomy {
                kind: self,
                evaluation_dependent: true,
                feature_dependence: -1,
                inputs: RequiredInputs { features: true, target: true, model: true, predictions: true },
            },
        }
    }

    /// All constraint kinds, in Table 1 order.
    pub const ALL: [ConstraintKind; 6] = [
        ConstraintKind::MaxSearchTime,
        ConstraintKind::MaxFeatureSetSize,
        ConstraintKind::MinAccuracy,
        ConstraintKind::MinEqualOpportunity,
        ConstraintKind::MinPrivacy,
        ConstraintKind::MinSafety,
    ];
}

/// A user-declared constraint set for one ML scenario.
///
/// Thresholds follow the paper's Listing 1 template: `min_f1` and
/// `max_search_time` are mandatory; everything else is optional.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSet {
    /// Minimum F1 score on the validation/test split (mandatory).
    pub min_f1: f64,
    /// Maximum wall-clock search time (mandatory).
    pub max_search_time: Duration,
    /// Maximum selected-feature *fraction* of the full feature set, in
    /// `(0, 1]` (the paper samples `max_features` as a fraction).
    pub max_feature_frac: Option<f64>,
    /// Minimum equal opportunity.
    pub min_eo: Option<f64>,
    /// Minimum empirical safety.
    pub min_safety: Option<f64>,
    /// Differential-privacy budget ε; when set, the DP model variant is
    /// trained and the constraint holds by construction.
    pub privacy_epsilon: Option<f64>,
}

impl ConstraintSet {
    /// A permissive baseline set: only the mandatory constraints, with an
    /// effectively-unbounded budget. Useful as a starting point in examples.
    pub fn accuracy_only(min_f1: f64, max_search_time: Duration) -> Self {
        Self {
            min_f1,
            max_search_time,
            max_feature_frac: None,
            min_eo: None,
            min_safety: None,
            privacy_epsilon: None,
        }
    }

    /// Which optional constraints are active (used by Table 5's breakdown).
    pub fn active_optional(&self) -> Vec<ConstraintKind> {
        let mut kinds = Vec::new();
        if self.max_feature_frac.is_some() {
            kinds.push(ConstraintKind::MaxFeatureSetSize);
        }
        if self.min_eo.is_some() {
            kinds.push(ConstraintKind::MinEqualOpportunity);
        }
        if self.min_safety.is_some() {
            kinds.push(ConstraintKind::MinSafety);
        }
        if self.privacy_epsilon.is_some() {
            kinds.push(ConstraintKind::MinPrivacy);
        }
        kinds
    }

    /// Maximum number of features allowed for a dataset with `n_total`
    /// features (at least 1), or `n_total` when unconstrained.
    ///
    /// Evaluation-independent: strategies use this to *prune* the search
    /// space before any training (Table 1's taxonomy).
    pub fn max_features_count(&self, n_total: usize) -> usize {
        if n_total == 0 {
            return 0;
        }
        match self.max_feature_frac {
            Some(frac) => ((frac * n_total as f64).floor() as usize).clamp(1, n_total),
            None => n_total,
        }
    }

    /// Whether EO must be measured for this set.
    pub fn needs_eo(&self) -> bool {
        self.min_eo.is_some()
    }

    /// Whether the evasion attack must be run for this set.
    pub fn needs_safety(&self) -> bool {
        self.min_safety.is_some()
    }

    /// Validates threshold ranges; returns a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.min_f1) {
            return Err(format!("min_f1 {} outside [0,1]", self.min_f1));
        }
        if let Some(f) = self.max_feature_frac {
            if !(0.0 < f && f <= 1.0) {
                return Err(format!("max_feature_frac {f} outside (0,1]"));
            }
        }
        for (name, v) in [("min_eo", self.min_eo), ("min_safety", self.min_safety)] {
            if let Some(v) = v {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("{name} {v} outside [0,1]"));
                }
            }
        }
        if let Some(eps) = self.privacy_epsilon {
            if eps <= 0.0 {
                return Err(format!("privacy_epsilon {eps} must be positive"));
            }
        }
        if self.max_search_time.is_zero() {
            return Err("max_search_time must be positive".into());
        }
        Ok(())
    }
}

/// Measured metrics of one candidate feature subset.
///
/// `eo`/`safety` are `None` when the constraint set did not require
/// measuring them (they are expensive); a present constraint with a missing
/// measurement counts as a full violation so bugs surface loudly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// F1 score on the evaluation split.
    pub f1: f64,
    /// Equal opportunity, when measured.
    pub eo: Option<f64>,
    /// Empirical safety, when measured.
    pub safety: Option<f64>,
    /// Number of selected features.
    pub n_selected: usize,
    /// Total number of features in the dataset.
    pub n_total: usize,
}

impl ConstraintSet {
    /// The aggregated squared distance of Eq. 1: `Σ_m (δ_m − c_m)²` over
    /// violated constraints, `0` iff every constraint holds.
    ///
    /// All thresholds live in `[0, 1]`, so the terms are commensurable and
    /// "we treat all constraints equally" (paper § 4.3). The
    /// feature-set-size term uses fractions for the same reason. Privacy is
    /// excluded: it holds by construction.
    pub fn distance(&self, eval: &Evaluation) -> f64 {
        let mut d = 0.0;
        d += shortfall(eval.f1, self.min_f1);
        if let Some(min_eo) = self.min_eo {
            d += shortfall(eval.eo.unwrap_or(0.0), min_eo);
        }
        if let Some(min_safety) = self.min_safety {
            d += shortfall(eval.safety.unwrap_or(0.0), min_safety);
        }
        if let Some(frac) = self.max_feature_frac {
            // The effective cap floors at one feature (an empty subset is
            // no model at all), so a subset within `max_features_count` is
            // never penalized even when the raw fraction exceeds the
            // threshold — keeps Eq. 1 consistent with the
            // evaluation-independent pruning boundary.
            if eval.n_selected > self.max_features_count(eval.n_total) {
                let used = eval.n_selected as f64 / eval.n_total.max(1) as f64;
                d += shortfall(frac, used); // violated when used > frac
            }
        }
        d
    }

    /// `true` iff the evaluation satisfies every declared constraint.
    pub fn is_satisfied(&self, eval: &Evaluation) -> bool {
        self.distance(eval) == 0.0
    }

    /// The search objective of Eq. 2 (to be *minimized*): the distance while
    /// any constraint is violated; once satisfied, the negated sum of
    /// utilities so optimization continues to improve them.
    pub fn objective(&self, eval: &Evaluation, utilities: &[f64]) -> f64 {
        let d = self.distance(eval);
        if d > 0.0 {
            d
        } else {
            -utilities.iter().sum::<f64>()
        }
    }
}

/// Squared shortfall of `achieved` below `threshold` (0 when satisfied).
#[inline]
fn shortfall(achieved: f64, threshold: f64) -> f64 {
    if achieved >= threshold {
        0.0
    } else {
        let gap = achieved - threshold;
        gap * gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ConstraintSet {
        ConstraintSet {
            min_f1: 0.7,
            max_search_time: Duration::from_secs(1),
            max_feature_frac: Some(0.5),
            min_eo: Some(0.9),
            min_safety: None,
            privacy_epsilon: None,
        }
    }

    fn eval(f1: f64, eo: f64, selected: usize) -> Evaluation {
        Evaluation { f1, eo: Some(eo), safety: None, n_selected: selected, n_total: 10 }
    }

    #[test]
    fn distance_is_zero_iff_satisfied() {
        let c = set();
        let good = eval(0.8, 0.95, 4);
        assert_eq!(c.distance(&good), 0.0);
        assert!(c.is_satisfied(&good));
        let bad = eval(0.6, 0.95, 4);
        assert!(c.distance(&bad) > 0.0);
        assert!(!c.is_satisfied(&bad));
    }

    #[test]
    fn distance_sums_squared_gaps() {
        let c = set();
        // f1 short by 0.1, eo short by 0.2, size ok.
        let e = eval(0.6, 0.7, 3);
        let expected = 0.1f64 * 0.1 + 0.2 * 0.2;
        assert!((c.distance(&e) - expected).abs() < 1e-12);
    }

    #[test]
    fn feature_size_violation_uses_fractions() {
        let c = set();
        // 8/10 = 0.8 used vs cap 0.5 -> (0.5 - 0.8)^2.
        let e = eval(0.9, 0.95, 8);
        assert!((c.distance(&e) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn missing_measurement_counts_as_violation() {
        let c = set();
        let e = Evaluation { f1: 0.9, eo: None, safety: None, n_selected: 2, n_total: 10 };
        // eo missing but constrained at 0.9 -> (0 - 0.9)^2.
        assert!((c.distance(&e) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_metrics_are_ignored() {
        let mut c = set();
        c.min_eo = None;
        c.max_feature_frac = None;
        let e = Evaluation { f1: 0.75, eo: Some(0.1), safety: Some(0.0), n_selected: 10, n_total: 10 };
        assert_eq!(c.distance(&e), 0.0);
    }

    #[test]
    fn objective_switches_to_utility_when_satisfied() {
        let c = set();
        let good = eval(0.8, 0.95, 4);
        assert_eq!(c.objective(&good, &[0.8]), -0.8);
        let bad = eval(0.6, 0.95, 4);
        assert!(c.objective(&bad, &[0.8]) > 0.0);
    }

    #[test]
    fn max_features_count_rounds_down_with_floor_one() {
        let c = set(); // frac 0.5
        assert_eq!(c.max_features_count(10), 5);
        assert_eq!(c.max_features_count(3), 1);
        let mut tiny = set();
        tiny.max_feature_frac = Some(0.01);
        assert_eq!(tiny.max_features_count(10), 1);
        let mut open = set();
        open.max_feature_frac = None;
        assert_eq!(open.max_features_count(10), 10);
    }

    #[test]
    fn taxonomy_matches_table1() {
        use ConstraintKind::*;
        assert!(!MaxSearchTime.taxonomy().evaluation_dependent);
        assert!(!MaxFeatureSetSize.taxonomy().evaluation_dependent);
        assert!(MinAccuracy.taxonomy().evaluation_dependent);
        assert!(MinEqualOpportunity.taxonomy().evaluation_dependent);
        assert!(!MinPrivacy.taxonomy().evaluation_dependent);
        assert!(MinSafety.taxonomy().evaluation_dependent);
        // Accuracy benefits from features; EO and safety suffer.
        assert_eq!(MinAccuracy.taxonomy().feature_dependence, 1);
        assert_eq!(MinEqualOpportunity.taxonomy().feature_dependence, -1);
        assert_eq!(MinSafety.taxonomy().feature_dependence, -1);
        // Safety needs everything.
        let safety_inputs = MinSafety.taxonomy().inputs;
        assert!(safety_inputs.features && safety_inputs.target && safety_inputs.model && safety_inputs.predictions);
        // Accuracy needs only target + predictions.
        let acc = MinAccuracy.taxonomy().inputs;
        assert!(!acc.features && acc.target && !acc.model && acc.predictions);
        assert_eq!(ConstraintKind::ALL.len(), 6);
    }

    #[test]
    fn active_optional_reports_declared_constraints() {
        let mut c = set();
        c.privacy_epsilon = Some(0.5);
        let active = c.active_optional();
        assert!(active.contains(&ConstraintKind::MaxFeatureSetSize));
        assert!(active.contains(&ConstraintKind::MinEqualOpportunity));
        assert!(active.contains(&ConstraintKind::MinPrivacy));
        assert!(!active.contains(&ConstraintKind::MinSafety));
    }

    #[test]
    fn validation_catches_bad_thresholds() {
        let mut c = set();
        assert!(c.validate().is_ok());
        c.min_f1 = 1.5;
        assert!(c.validate().is_err());
        c.min_f1 = 0.7;
        c.max_feature_frac = Some(0.0);
        assert!(c.validate().is_err());
        c.max_feature_frac = Some(0.5);
        c.privacy_epsilon = Some(-1.0);
        assert!(c.validate().is_err());
        c.privacy_epsilon = None;
        c.max_search_time = Duration::ZERO;
        assert!(c.validate().is_err());
    }
}
