//! Property-based tests for the constraint-distance objective.

use dfs_constraints::{ConstraintSet, Evaluation};
use proptest::prelude::*;
use std::time::Duration;

fn arb_set() -> impl Strategy<Value = ConstraintSet> {
    (
        0.0..1.0f64,
        prop::option::of(0.01..1.0f64),
        prop::option::of(0.0..1.0f64),
        prop::option::of(0.0..1.0f64),
        prop::option::of(0.01..100.0f64),
    )
        .prop_map(|(min_f1, frac, eo, safety, eps)| ConstraintSet {
            min_f1,
            max_search_time: Duration::from_secs(1),
            max_feature_frac: frac,
            min_eo: eo,
            min_safety: safety,
            privacy_epsilon: eps,
        })
}

fn arb_eval() -> impl Strategy<Value = Evaluation> {
    (0.0..=1.0f64, 0.0..=1.0f64, 0.0..=1.0f64, 0usize..=20, 1usize..=20).prop_map(
        |(f1, eo, safety, sel, extra)| Evaluation {
            f1,
            eo: Some(eo),
            safety: Some(safety),
            n_selected: sel.min(sel + extra),
            n_total: sel + extra,
        },
    )
}

proptest! {
    /// Eq. 1 is non-negative, zero exactly on satisfaction, and bounded by
    /// the number of declared constraints (each term is a squared gap in
    /// [0,1]).
    #[test]
    fn distance_is_sound(c in arb_set(), e in arb_eval()) {
        let d = c.distance(&e);
        prop_assert!(d >= 0.0);
        prop_assert!(d.is_finite());
        prop_assert_eq!(d == 0.0, c.is_satisfied(&e));
        let n_terms = 1 // accuracy
            + c.min_eo.is_some() as usize
            + c.min_safety.is_some() as usize
            + c.max_feature_frac.is_some() as usize;
        prop_assert!(d <= n_terms as f64 + 1e-9);
    }

    /// Distance is monotone: improving any single metric never increases it.
    #[test]
    fn distance_is_monotone_in_each_metric(c in arb_set(), e in arb_eval(), bump in 0.0..0.5f64) {
        let base = c.distance(&e);
        let mut better_f1 = e;
        better_f1.f1 = (e.f1 + bump).min(1.0);
        prop_assert!(c.distance(&better_f1) <= base + 1e-12);

        let mut better_eo = e;
        better_eo.eo = e.eo.map(|v| (v + bump).min(1.0));
        prop_assert!(c.distance(&better_eo) <= base + 1e-12);

        let mut fewer = e;
        fewer.n_selected = e.n_selected.saturating_sub(1);
        prop_assert!(c.distance(&fewer) <= base + 1e-12);
    }

    /// Eq. 2 equals Eq. 1 while violated, and switches to the negated
    /// utility sum exactly at satisfaction.
    #[test]
    fn objective_is_consistent(c in arb_set(), e in arb_eval(), u in 0.0..1.0f64) {
        let d = c.distance(&e);
        let obj = c.objective(&e, &[u]);
        if d > 0.0 {
            prop_assert_eq!(obj, d);
        } else {
            prop_assert!((obj + u).abs() < 1e-12);
        }
    }

    /// The evaluation-independent feature cap agrees with the distance's
    /// size term: a subset within the cap never pays a size penalty.
    #[test]
    fn cap_and_distance_agree(c in arb_set(), total in 1usize..200) {
        let cap = c.max_features_count(total);
        prop_assert!(cap >= 1 && cap <= total);
        let eval = Evaluation {
            f1: 1.0,
            eo: Some(1.0),
            safety: Some(1.0),
            n_selected: cap,
            n_total: total,
        };
        prop_assert_eq!(c.distance(&eval), 0.0,
            "cap {} of {} should satisfy frac {:?}", cap, total, c.max_feature_frac);
    }
}
