//! **Figure 5** — the fastest strategy per cell for four constraint pairs,
//! accuracy × {EO, privacy, #features, safety}, on the Adult dataset.
//!
//! The paper draws four colored grids; this harness prints each grid with
//! the winning strategy's name per cell (`-` when no strategy satisfied the
//! cell's constraint pair within budget).
//!
//! Run: `cargo bench --bench fig5_constraint_grid`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::{bench_settings, build_splits, CorpusConfig};
use dfs_bench::print_table;
use dfs_core::prelude::*;
use dfs_core::runner::run_benchmark;
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::time::Duration;

/// The strategies shown in the paper's Figure 5 legend.
fn fig5_arms() -> Vec<Arm> {
    vec![
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Variance)),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Chi2)),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Fcbf)),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Mim)),
        Arm::Strategy(StrategyId::TpeNr),
        Arm::Strategy(StrategyId::SaNr),
        Arm::Strategy(StrategyId::Sfs),
        Arm::Strategy(StrategyId::Sffs),
    ]
}

#[derive(Clone, Copy)]
enum Pair {
    Eo,
    Privacy,
    Features,
    Safety,
}

impl Pair {
    fn label(&self) -> &'static str {
        match self {
            Pair::Eo => "min F1 x min EO",
            Pair::Privacy => "min F1 x privacy epsilon",
            Pair::Features => "min F1 x max feature fraction",
            Pair::Safety => "min F1 x min safety",
        }
    }

    /// Grid values for the second axis (paper: a grid over the constraint's
    /// plausible range).
    fn axis(&self) -> Vec<f64> {
        match self {
            Pair::Eo => vec![0.80, 0.87, 0.93, 0.99],
            Pair::Privacy => vec![5.0, 1.0, 0.3, 0.1], // stricter rightward
            Pair::Features => vec![0.8, 0.5, 0.3, 0.1],
            Pair::Safety => vec![0.80, 0.87, 0.93, 0.99],
        }
    }

    fn apply(&self, c: &mut ConstraintSet, v: f64) {
        match self {
            Pair::Eo => c.min_eo = Some(v),
            Pair::Privacy => c.privacy_epsilon = Some(v),
            Pair::Features => c.max_feature_frac = Some(v),
            Pair::Safety => c.min_safety = Some(v),
        }
    }
}

fn main() {
    let cfg = CorpusConfig::default();
    let splits = ok_or_exit(build_splits(&cfg));
    let settings = bench_settings();
    let arms = fig5_arms();
    let f1_axis = [0.50, 0.59, 0.68, 0.77];

    for pair in [Pair::Eo, Pair::Privacy, Pair::Features, Pair::Safety] {
        // One scenario per grid cell.
        let mut scenarios = Vec::new();
        for (i, &min_f1) in f1_axis.iter().enumerate() {
            for (j, &v) in pair.axis().iter().enumerate() {
                let mut constraints =
                    ConstraintSet::accuracy_only(min_f1, Duration::from_millis(350));
                pair.apply(&mut constraints, v);
                scenarios.push(MlScenario {
                    dataset: "adult".into(),
                    model: ModelKind::LogisticRegression,
                    hpo: false, // grid cells are many; default params keep it fast
                    constraints,
                    utility_f1: false,
                    seed: 9000 + (i * 10 + j) as u64,
                });
            }
        }
        let matrix = run_benchmark(&splits, scenarios, &arms, &settings, cfg.threads);
        let fastest: HashMap<usize, usize> =
            matrix.fastest_arm_per_scenario().into_iter().collect();

        let mut header: Vec<String> = vec!["min F1 \\ axis".into()];
        header.extend(pair.axis().iter().map(|v| format!("{v}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for (i, &min_f1) in f1_axis.iter().enumerate() {
            let mut row = vec![format!("{min_f1:.2}")];
            for j in 0..pair.axis().len() {
                let idx = i * pair.axis().len() + j;
                row.push(match fastest.get(&idx) {
                    Some(&arm) => matrix.arms[arm].name(),
                    None => "-".into(),
                });
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 5: fastest strategy, {} (Adult)", pair.label()),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\n[shape-check] paper: ranking strategies win the permissive cells; high-EO cells go to \
         binary-vector strategies (TPE(NR)/SA(NR)) that can prune specific biased features; \
         restrictive privacy/feature cells favor rankings with stronger priors."
    );
}
