//! **Table 6** — coverage per classification model (LR, NB, DT).
//!
//! Run: `cargo bench --bench table6_model_coverage`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;

fn main() {
    let cfg = CorpusConfig::default();
    let (matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (arm_idx, arm) in matrix.arms.iter().enumerate() {
        let per_model: Vec<String> = ModelKind::PRIMARY
            .iter()
            .map(|&kind| {
                format!("{:.2}", matrix.coverage_where(arm_idx, |s| s.model == kind))
            })
            .collect();
        let mut row = vec![arm.name()];
        row.extend(per_model);
        rows.push(row);
    }
    print_table(
        "Table 6: Model-dependent coverage",
        &["Strategy", "LR", "NB", "DT"],
        &rows,
    );

    // Shape checks (paper § 6.3, Model-Specific Effectiveness):
    let cov = |arm: Arm, kind: ModelKind| {
        matrix
            .arm_index(arm)
            .map(|i| matrix.coverage_where(i, |s| s.model == kind))
            .unwrap_or(0.0)
    };
    // 1. RFE under NB needs permutation importance -> time overhead -> lower
    //    coverage than under LR.
    let rfe_nb = cov(Arm::Strategy(StrategyId::Rfe), ModelKind::GaussianNb);
    let rfe_lr = cov(Arm::Strategy(StrategyId::Rfe), ModelKind::LogisticRegression);
    println!(
        "\n[shape-check] RFE: NB {rfe_nb:.2} vs LR {rfe_lr:.2} — paper: NB much lower (0.16 vs 0.44): {}",
        if rfe_nb <= rfe_lr { "REPRODUCED" } else { "NOT reproduced" }
    );
    // 2. Binary-vector strategies prefer LR (cheapest model = most evals).
    let sa_lr = cov(Arm::Strategy(StrategyId::SaNr), ModelKind::LogisticRegression);
    let sa_nb = cov(Arm::Strategy(StrategyId::SaNr), ModelKind::GaussianNb);
    println!(
        "[shape-check] SA(NR): LR {sa_lr:.2} vs NB {sa_nb:.2} — paper: LR higher (0.59 vs 0.30): {}",
        if sa_lr >= sa_nb { "REPRODUCED" } else { "NOT reproduced" }
    );
}
