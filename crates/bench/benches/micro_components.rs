//! Criterion micro-benchmarks for the per-component costs that drive the
//! study's runtime findings: ranking computation (cheap χ² vs heavy
//! ReliefF/MCFS), model fits, the evasion attack, and optimizer iterations.
//!
//! Run: `cargo bench --bench micro_components`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, spec_by_name};
use dfs_linalg::Matrix;
use dfs_metrics::{empirical_safety, AttackConfig};
use dfs_models::{ModelKind, ModelSpec};
use dfs_rankings::RankingKind;
use dfs_search::sa::{simulated_annealing, SaConfig};
use dfs_search::tpe::{tpe_binary, TpeConfig};
use std::hint::black_box;

fn bench_data() -> (Matrix, Vec<bool>) {
    let mut spec = spec_by_name("german_credit").expect("suite dataset");
    spec.rows = 400;
    let ds = generate(&spec, 3);
    (ds.x, ds.y)
}

fn rankings(c: &mut Criterion) {
    let (x, y) = bench_data();
    let mut group = c.benchmark_group("rankings");
    group.sample_size(10);
    for kind in [
        RankingKind::Chi2,
        RankingKind::Variance,
        RankingKind::Fisher,
        RankingKind::Mim,
        RankingKind::Fcbf,
        RankingKind::ReliefF,
        RankingKind::Mcfs,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(kind.compute(&x, &y, 1)));
        });
    }
    group.finish();
}

fn model_fits(c: &mut Criterion) {
    let (x, y) = bench_data();
    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for kind in ModelKind::PRIMARY {
        group.bench_function(kind.short_name(), |b| {
            b.iter(|| black_box(ModelSpec::default_for(kind).fit(&x, &y)));
        });
    }
    group.bench_function("LR_dp", |b| {
        b.iter(|| black_box(ModelSpec::Lr { c: 1.0 }.fit_dp(&x, &y, 1.0, 7)));
    });
    group.finish();
}

fn attack(c: &mut Criterion) {
    let spec = spec_by_name("compas").expect("suite dataset");
    let ds = generate(&spec, 5);
    let split = stratified_three_way(&ds, 5);
    let model = ModelSpec::default_for(ModelKind::LogisticRegression)
        .fit(&split.train.x, &split.train.y);
    let cfg = AttackConfig { max_points: 8, ..AttackConfig::default() };
    c.bench_function("evasion_attack_8pts", |b| {
        b.iter(|| {
            let predict = |row: &[f64]| model.predict_one(row);
            black_box(empirical_safety(&predict, &split.val.x, &split.val.y, &cfg))
        });
    });
}

fn optimizers(c: &mut Criterion) {
    let target: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
    let mut group = c.benchmark_group("search_100_evals");
    group.sample_size(20);
    group.bench_function("sa", |b| {
        b.iter_batched(
            || target.clone(),
            |t| {
                let mut eval = |bits: &[bool]| {
                    Some(bits.iter().zip(&t).filter(|(a, b)| a != b).count() as f64)
                };
                let cfg =
                    SaConfig { max_iters: 100, stop_at: None, ..Default::default() };
                black_box(simulated_annealing(24, &mut eval, &cfg))
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("tpe", |b| {
        b.iter_batched(
            || target.clone(),
            |t| {
                let mut eval = |bits: &[bool]| {
                    Some(bits.iter().zip(&t).filter(|(a, b)| a != b).count() as f64)
                };
                let cfg =
                    TpeConfig { max_iters: 100, stop_at: None, ..Default::default() };
                black_box(tpe_binary(24, &mut eval, &cfg))
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, rankings, model_fits, attack, optimizers);
criterion_main!(benches);
