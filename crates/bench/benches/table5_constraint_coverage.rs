//! **Table 5** — coverage of scenarios conditioned on which optional
//! constraint was declared (Min EO, Max Feature Set Size, Min Safety,
//! Min Privacy).
//!
//! Run: `cargo bench --bench table5_constraint_coverage`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;

fn main() {
    let cfg = CorpusConfig::default();
    let (matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (arm_idx, arm) in matrix.arms.iter().enumerate() {
        let eo = matrix.coverage_where(arm_idx, |s| s.constraints.min_eo.is_some());
        let size =
            matrix.coverage_where(arm_idx, |s| s.constraints.max_feature_frac.is_some());
        let safety = matrix.coverage_where(arm_idx, |s| s.constraints.min_safety.is_some());
        let privacy =
            matrix.coverage_where(arm_idx, |s| s.constraints.privacy_epsilon.is_some());
        rows.push(vec![
            arm.name(),
            format!("{eo:.2}"),
            format!("{size:.2}"),
            format!("{safety:.2}"),
            format!("{privacy:.2}"),
        ]);
    }
    print_table(
        "Table 5: Coverage if a constraint was specified",
        &["Strategy", "Min EO", "Max Feature Set Size", "Min Safety", "Min Privacy"],
        &rows,
    );

    // Shape check: forward selection dominates the constrained scenarios
    // (the paper: SFFS/SFS clearly lead every column).
    let cov = |arm: Arm, pred: &dyn Fn(&MlScenario) -> bool| {
        matrix.arm_index(arm).map(|i| matrix.coverage_where(i, pred)).unwrap_or(0.0)
    };
    let privacy_pred = |s: &MlScenario| s.constraints.privacy_epsilon.is_some();
    let sffs = cov(Arm::Strategy(StrategyId::Sffs), &privacy_pred);
    let sbs = cov(Arm::Strategy(StrategyId::Sbs), &privacy_pred);
    println!(
        "\n[shape-check] privacy-constrained coverage: SFFS {sffs:.2} vs SBS {sbs:.2} — paper: SFFS 0.78 vs SBS 0.22: {}",
        if sffs >= sbs { "REPRODUCED" } else { "NOT reproduced" }
    );
}
