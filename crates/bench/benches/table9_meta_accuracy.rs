//! **Table 9** — meta-learning accuracy across strategies: precision,
//! recall and F1 of the per-strategy success classifiers under
//! leave-one-dataset-out cross-validation.
//!
//! Run: `cargo bench --bench table9_meta_accuracy`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{fmt_mean_std, print_table, BenchVersion, CorpusConfig};

use dfs_optimizer::{leave_one_dataset_out_pooled, OptimizerConfig};

fn main() {
    let cfg = CorpusConfig::default();
    let (matrix, splits) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));

    eprintln!("[table9] leave-one-dataset-out training of the DFS optimizer…");
    let (default_matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::DefaultParams));
    let report = leave_one_dataset_out_pooled(&matrix, &[&default_matrix], &splits, &OptimizerConfig::default());

    let rows: Vec<Vec<String>> = report
        .per_strategy
        .iter()
        .map(|prf| {
            vec![
                prf.strategy.name(),
                fmt_mean_std(prf.precision),
                fmt_mean_std(prf.recall),
                fmt_mean_std(prf.f1),
            ]
        })
        .collect();
    print_table(
        "Table 9: Meta-learning accuracy across strategies",
        &["Strategy", "Precision", "Recall", "F1 score"],
        &rows,
    );

    let (cov_mean, cov_std) = matrix.choice_coverage(&report.choices);
    println!(
        "\nDFS optimizer coverage from these classifiers: {cov_mean:.2} \u{00b1} {cov_std:.2} \
         (fastest pick in {:.0}% of scenarios)",
        report.fastest_fraction * 100.0
    );
    let mean_f1 =
        report.per_strategy.iter().map(|p| p.f1.0).sum::<f64>() / report.per_strategy.len().max(1) as f64;
    println!(
        "[shape-check] average classifier F1 {mean_f1:.2} — paper: 'fair, 70% at most', yet \
         jointly strong enough to beat the best single strategy."
    );
}
