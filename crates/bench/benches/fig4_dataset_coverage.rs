//! **Figure 4** — strategies' coverage broken down per dataset (the heatmap
//! of the paper, printed here as a grid), including the DFS Optimizer and
//! the Oracle rows.
//!
//! Run: `cargo bench --bench fig4_dataset_coverage`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;

use dfs_optimizer::{leave_one_dataset_out_pooled, OptimizerConfig};
use std::collections::HashMap;

fn main() {
    let cfg = CorpusConfig::default();
    let (matrix, splits) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));
    let datasets = matrix.datasets();

    let mut header: Vec<&str> = vec!["Strategy"];
    header.extend(datasets.iter().map(|s| s.as_str()));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (arm_idx, arm) in matrix.arms.iter().enumerate() {
        let per_ds: HashMap<String, f64> =
            matrix.coverage_by_dataset(arm_idx).into_iter().collect();
        let mut row = vec![arm.name()];
        row.extend(datasets.iter().map(|ds| {
            per_ds.get(ds).map(|c| format!("{c:.2}")).unwrap_or_else(|| "-".into())
        }));
        rows.push(row);
    }

    // DFS Optimizer row.
    eprintln!("[fig4] leave-one-dataset-out optimizer…");
    let (default_matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::DefaultParams));
    let report = leave_one_dataset_out_pooled(&matrix, &[&default_matrix], &splits, &OptimizerConfig::default());
    let satisfiable = matrix.satisfiable();
    let mut opt_row = vec!["DFS Optimizer".to_string()];
    for ds in &datasets {
        let rows_ds: Vec<usize> = satisfiable
            .iter()
            .copied()
            .filter(|&i| &matrix.scenarios[i].dataset == ds)
            .collect();
        if rows_ds.is_empty() {
            opt_row.push("-".into());
            continue;
        }
        let wins = rows_ds
            .iter()
            .filter(|&&i| report.choices.get(&i).is_some_and(|&a| matrix.results[i][a].success))
            .count();
        opt_row.push(format!("{:.2}", wins as f64 / rows_ds.len() as f64));
    }
    rows.push(opt_row);

    // Oracle row: 1.00 wherever a dataset has satisfiable scenarios.
    let mut oracle = vec!["Oracle".to_string()];
    for ds in &datasets {
        let has = satisfiable.iter().any(|&i| &matrix.scenarios[i].dataset == ds);
        oracle.push(if has { "1.00".into() } else { "-".into() });
    }
    rows.push(oracle);

    print_table("Figure 4: Strategies' coverage for individual datasets", &header, &rows);

    // Shape check: heavyweight rankings struggle on the largest dataset
    // (the traffic stand-in), as in the paper.
    let big = &datasets[0];
    let cov_on_big = |arm: Arm| -> f64 {
        matrix
            .arm_index(arm)
            .map(|i| {
                matrix
                    .coverage_by_dataset(i)
                    .into_iter()
                    .find(|(ds, _)| ds == big)
                    .map(|(_, c)| c)
                    .unwrap_or(0.0)
            })
            .unwrap_or(0.0)
    };
    let mcfs = cov_on_big(Arm::Strategy(StrategyId::TpeRanking(dfs_rankings::RankingKind::Mcfs)));
    let chi2 = cov_on_big(Arm::Strategy(StrategyId::TpeRanking(dfs_rankings::RankingKind::Chi2)));
    println!(
        "\n[shape-check] on '{big}': TPE(MCFS) {mcfs:.2} vs TPE(Chi2) {chi2:.2} — paper: heavy rankings \
         lag on the largest data: {}",
        if mcfs <= chi2 + 0.05 { "REPRODUCED" } else { "NOT reproduced" }
    );
}
