//! **Table 7** — reusability of feature sets across models: the percentage
//! of SFFS feature sets found with LR that still satisfy Min Accuracy /
//! Min EO / Min Safety when a DT, NB, or SVM is trained on them.
//!
//! Run: `cargo bench --bench table7_transferability`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::{bench_settings, build_splits, CorpusConfig};
use dfs_bench::{fmt_mean_std, print_table};
use dfs_core::prelude::*;
use dfs_core::runner::mean_std;
use dfs_linalg::rng::rng_from_seed;
use std::time::Duration;

fn main() {
    let cfg = CorpusConfig::default();
    let splits = ok_or_exit(build_splits(&cfg));
    let settings = bench_settings();

    // Sample LR scenarios that constrain accuracy + EO + safety (the three
    // evaluation-dependent constraints Table 7 examines), run SFFS, and
    // keep the satisfied subsets.
    let sampler = SamplerConfig {
        time_range: (Duration::from_millis(80), Duration::from_millis(700)),
        hpo: true,
        utility_f1: false,
    };
    let mut rng = rng_from_seed(777);
    let mut found: Vec<(MlScenario, Vec<usize>, String)> = Vec::new();
    let per_dataset = 6usize;
    for (name, _) in &cfg.datasets {
        for k in 0..per_dataset {
            let mut scenario = sample_scenario(name, &sampler, &mut rng, k as u64);
            scenario.model = ModelKind::LogisticRegression;
            // Always declare the three transferable constraints.
            scenario.constraints.min_eo.get_or_insert(0.85);
            scenario.constraints.min_safety.get_or_insert(0.85);
            scenario.constraints.privacy_epsilon = None;
            let split = &splits[*name];
            let outcome = run_dfs(&scenario, split, &settings, StrategyId::Sffs);
            if outcome.success {
                found.push((scenario, outcome.subset.expect("success has subset"), name.to_string()));
            }
        }
    }
    eprintln!("[table7] {} satisfied LR scenarios collected", found.len());

    let targets = [ModelKind::DecisionTree, ModelKind::GaussianNb, ModelKind::LinearSvm];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for target in targets {
        // Per-dataset fractions -> mean ± std, matching the paper's cells.
        let mut acc_per_ds: Vec<f64> = Vec::new();
        let mut eo_per_ds: Vec<f64> = Vec::new();
        let mut safety_per_ds: Vec<f64> = Vec::new();
        for (name, _) in &cfg.datasets {
            let cases: Vec<_> = found.iter().filter(|(_, _, ds)| ds == name).collect();
            if cases.is_empty() {
                continue;
            }
            let mut acc = 0.0;
            let mut eo = 0.0;
            let mut safety = 0.0;
            for (scenario, subset, _) in &cases {
                let split = &splits[name.to_owned()];
                let r = check_transfer(scenario, split, &settings, subset, target);
                acc += r.accuracy_holds as u8 as f64;
                eo += r.eo_holds.unwrap_or(false) as u8 as f64;
                safety += r.safety_holds.unwrap_or(false) as u8 as f64;
            }
            let n = cases.len() as f64;
            acc_per_ds.push(acc / n);
            eo_per_ds.push(eo / n);
            safety_per_ds.push(safety / n);
        }
        rows.push(vec![
            format!("{} (SFFS)", target.short_name()),
            fmt_mean_std(mean_std(&acc_per_ds)),
            fmt_mean_std(mean_std(&eo_per_ds)),
            fmt_mean_std(mean_std(&safety_per_ds)),
        ]);
    }
    print_table(
        "Table 7: Feature sets found with LR that satisfy constraints under DT / NB / SVM",
        &["Target model", "Min Accuracy", "Min EO", "Min Safety"],
        &rows,
    );
    println!(
        "\n[shape-check] paper: accuracy and EO transfer for the large majority (0.79-0.95); \
         safety is the most model-dependent (0.63-0.88). Compare the rows above."
    );
}
