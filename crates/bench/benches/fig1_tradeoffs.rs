//! **Figure 1** — the motivating trade-off scatter: accuracy (F1) against
//! equal opportunity, feature-set size, and safety for LR, NB and DT on the
//! COMPAS dataset, one point per random feature subset.
//!
//! The paper plots dots; this harness prints the series (one row per
//! subset) plus the correlation summary that the figure conveys: EO, size
//! and safety each trade off against accuracy, for every model.
//!
//! Run: `cargo bench --bench fig1_tradeoffs`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::{bench_settings, build_splits, CorpusConfig};
use dfs_bench::print_table;
use dfs_core::prelude::*;
use dfs_core::scenario::ScenarioContext;
use dfs_linalg::rng::{rng_from_seed, sample_without_replacement};
use dfs_linalg::stats::pearson;
use rand::Rng;
use std::time::Duration;

fn main() {
    let cfg = CorpusConfig::default();
    let splits = ok_or_exit(build_splits(&cfg));
    let split = &splits["compas"];
    let settings = bench_settings();
    let d = split.n_features();
    let subsets_per_model = 40usize;

    let mut rng = rng_from_seed(1);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut summaries: Vec<Vec<String>> = Vec::new();

    for model in ModelKind::PRIMARY {
        // Constraints exist only to force measuring EO and safety; the
        // thresholds are irrelevant for the scatter.
        let mut constraints = ConstraintSet::accuracy_only(0.99, Duration::from_secs(600));
        constraints.min_eo = Some(0.99);
        constraints.min_safety = Some(0.99);
        let scenario = MlScenario {
            dataset: "compas".into(),
            model,
            hpo: false,
            constraints,
            utility_f1: false,
            seed: 4242,
        };
        let mut settings = settings.clone();
        settings.max_evals = subsets_per_model + 4;
        let mut ctx = ScenarioContext::new(&scenario, split, &settings);

        let (mut f1s, mut eos, mut sizes, mut safeties) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for _ in 0..subsets_per_model {
            let k = rng.random_range(1..=d);
            let mut subset = sample_without_replacement(d, k, &mut rng);
            subset.sort_unstable();
            if ctx.evaluate(&subset).is_none() {
                break;
            }
            let eval = ctx.cached_evaluation(&subset).expect("just evaluated");
            f1s.push(eval.f1);
            eos.push(eval.eo.unwrap_or(1.0));
            sizes.push(eval.n_selected as f64 / d as f64);
            safeties.push(eval.safety.unwrap_or(1.0));
            rows.push(vec![
                model.short_name().into(),
                format!("{}", eval.n_selected),
                format!("{:.3}", eval.f1),
                format!("{:.3}", eval.eo.unwrap_or(1.0)),
                format!("{:.3}", eval.safety.unwrap_or(1.0)),
            ]);
        }
        // Per-model spread + correlation summary (what Figure 1 shows:
        // different subsets reach very different trade-offs).
        let spread = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            format!("{lo:.2}..{hi:.2}")
        };
        summaries.push(vec![
            model.short_name().into(),
            spread(&f1s),
            spread(&eos),
            spread(&safeties),
            format!("{:.2}", pearson(&sizes, &safeties)),
            format!("{:.2}", pearson(&sizes, &f1s)),
        ]);
    }

    print_table(
        "Figure 1 (series): per-subset metrics on COMPAS",
        &["Model", "#features", "F1", "EO", "Safety"],
        &rows,
    );
    print_table(
        "Figure 1 (summary): achievable ranges per model + correlations",
        &["Model", "F1 range", "EO range", "Safety range", "corr(size, safety)", "corr(size, F1)"],
        &summaries,
    );
    println!(
        "\n[shape-check] paper: across models, feature subsets span wide EO/safety ranges; more \
         features help accuracy (positive corr) and hurt safety (negative corr). Check the \
         summary columns above."
    );
}
