//! Ablations of the design choices DESIGN.md calls out, plus the paper's
//! future-work extension:
//!
//! 1. **Evaluation-independent pruning** (Table 1): how much cheaper a
//!    size-capped search is when over-cap subsets are scored without
//!    training (`evaluate`) vs. the wrapper way (`evaluate_no_prune`,
//!    which is what plain backward selection is stuck with).
//! 2. **Dynamic strategy switching** (§ 7 future work): the switching
//!    runner with a stall detector vs. the single best static strategy on
//!    the same scenarios.
//!
//! Run: `cargo bench --bench ablation_extensions`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::{bench_settings, build_splits, CorpusConfig};
use dfs_bench::print_table;
use dfs_core::prelude::*;
use dfs_core::scenario::ScenarioContext;
use dfs_core::switching::{run_with_switching, SwitchConfig};
use dfs_fs::SubsetEvaluator;
use std::time::Duration;

fn main() {
    let cfg = CorpusConfig::default();
    let splits = ok_or_exit(build_splits(&cfg));
    let settings = bench_settings();

    // --- Ablation 1: pruning vs wrapper on over-cap subsets. -------------
    let split = &splits["adult"];
    let d = split.n_features();
    let mut constraints = ConstraintSet::accuracy_only(0.6, Duration::from_secs(30));
    constraints.max_feature_frac = Some(0.1); // cap ~9 of 91 features
    let scenario = MlScenario {
        dataset: "adult".into(),
        model: ModelKind::LogisticRegression,
        hpo: false,
        constraints,
        utility_f1: false,
        seed: 404,
    };
    let over_cap: Vec<Vec<usize>> =
        (0..40).map(|k| ((k % 10)..(d / 2 + k % 10)).collect()).collect();

    let mut rows = Vec::new();
    for (label, prune) in [("pruned (Table 1 optimization)", true), ("wrapper (SBS's reality)", false)] {
        let mut ctx = ScenarioContext::new(&scenario, split, &settings);
        let t = std::time::Instant::now();
        for subset in &over_cap {
            if prune {
                ctx.evaluate(subset);
            } else {
                ctx.evaluate_no_prune(subset);
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{:?}", t.elapsed()),
            format!("{}", ctx.evals_used()),
        ]);
    }
    print_table(
        "Ablation 1: scoring 40 over-cap subsets (adult, 10% feature cap)",
        &["mode", "elapsed", "budget consumed"],
        &rows,
    );

    // --- Ablation 2: dynamic switching vs static strategies. -------------
    let sampler = SamplerConfig {
        time_range: (Duration::from_millis(150), Duration::from_millis(800)),
        hpo: false,
        utility_f1: false,
    };
    let mut rng = dfs_linalg::rng::rng_from_seed(2024);
    let mut scenarios = Vec::new();
    for name in ["compas", "german_credit", "telco_churn"] {
        for k in 0..6 {
            let mut s = sample_scenario(name, &sampler, &mut rng, k);
            s.constraints.min_f1 = s.constraints.min_f1.min(0.75);
            scenarios.push(s);
        }
    }

    let mut static_wins = vec![0usize; 2];
    let mut switch_wins = 0usize;
    let mut switch_attempts_total = 0usize;
    for scenario in &scenarios {
        let split = &splits[&scenario.dataset];
        for (i, strategy) in [StrategyId::Sffs, StrategyId::TpeNr].into_iter().enumerate() {
            if run_dfs(scenario, split, &settings, strategy).success {
                static_wins[i] += 1;
            }
        }
        let out = run_with_switching(scenario, split, &settings, &SwitchConfig::default());
        switch_attempts_total += out.attempted.len();
        if out.success {
            switch_wins += 1;
        }
    }
    let n = scenarios.len();
    print_table(
        "Ablation 2: dynamic switching (stall detector) vs static strategies",
        &["arm", "scenarios satisfied"],
        &[
            vec!["SFFS(NR) static".into(), format!("{}/{n}", static_wins[0])],
            vec!["TPE(NR) static".into(), format!("{}/{n}", static_wins[1])],
            vec![
                format!(
                    "switching (avg {:.1} strategies/run)",
                    switch_attempts_total as f64 / n as f64
                ),
                format!("{switch_wins}/{n}"),
            ],
        ],
    );
    println!(
        "\n[shape-check] pruning must consume zero budget and be orders of magnitude faster; \
         switching should match or beat its best member (it subsumes SFFS and TPE(NR))."
    );
}
