//! **Table 4** — mean distance to the constraints (validation and test) for
//! unsuccessful cases, and the mean normalized F1 score of the
//! utility-driven benchmark (Eq. 2 with F1 as the utility).
//!
//! Run: `cargo bench --bench table4_distance_utility`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{fmt_mean_std, print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;

fn main() {
    let cfg = CorpusConfig::default();
    let (hpo_matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));
    let (utility_matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Utility));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (arm_idx, arm) in hpo_matrix.arms.iter().enumerate() {
        let (val, test) = hpo_matrix.failure_distances(arm_idx);
        let nf1 = utility_matrix.normalized_f1_stats(arm_idx);
        rows.push(vec![
            arm.name(),
            fmt_mean_std(val),
            fmt_mean_std(test),
            fmt_mean_std(nf1),
        ]);
    }
    print_table(
        "Table 4: Distance to constraints for unsuccessful cases + normalized F1 (utility benchmark)",
        &["Strategy", "Distance (validation)", "Distance (test)", "Mean normalized F1"],
        &rows,
    );

    // Shape checks from the paper: forward selection comes closest on
    // average and achieves the highest normalized F1.
    let dist = |arm: Arm| {
        hpo_matrix.arm_index(arm).map(|i| hpo_matrix.failure_distances(i).0 .0).unwrap_or(f64::NAN)
    };
    let nf1 = |arm: Arm| {
        utility_matrix.arm_index(arm).map(|i| utility_matrix.normalized_f1_stats(i).0).unwrap_or(0.0)
    };
    let sffs_d = dist(Arm::Strategy(StrategyId::Sffs));
    let orig_d = dist(Arm::Original);
    println!(
        "\n[shape-check] failed-case distance: SFFS {:.2} vs Original {:.2} — paper: SFFS much closer: {}",
        sffs_d,
        orig_d,
        if sffs_d < orig_d || orig_d.is_nan() { "REPRODUCED" } else { "NOT reproduced" }
    );
    let sffs_u = nf1(Arm::Strategy(StrategyId::Sffs));
    let orig_u = nf1(Arm::Original);
    println!(
        "[shape-check] normalized F1: SFFS {sffs_u:.2} vs Original {orig_u:.2} — paper: SFFS highest (0.77 vs 0.16): {}",
        if sffs_u > orig_u { "REPRODUCED" } else { "NOT reproduced" }
    );
}
