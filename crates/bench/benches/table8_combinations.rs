//! **Table 8** — greedy strategy portfolios: the top-k combinations that
//! maximize coverage resp. the fraction of fastest answers when run in
//! parallel (assuming embarrassingly parallel execution, as the paper does).
//!
//! Run: `cargo bench --bench table8_combinations`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{fmt_mean_std, print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;

fn main() {
    let cfg = CorpusConfig::default();
    let (matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));

    let coverage_steps = matrix.greedy_portfolio(PortfolioObjective::Coverage);
    let fastest_steps = matrix.greedy_portfolio(PortfolioObjective::Fastest);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let max_len = coverage_steps.len().max(fastest_steps.len());
    for k in 0..max_len {
        let (cov_name, cov_val) = coverage_steps
            .get(k)
            .map(|&(arm, m, s)| {
                let prefix = if k == 0 { "" } else { "+ " };
                (format!("{prefix}{}", matrix.arms[arm].name()), fmt_mean_std((m, s)))
            })
            .unwrap_or_default();
        let (fast_name, fast_val) = fastest_steps
            .get(k)
            .map(|&(arm, m, s)| {
                let prefix = if k == 0 { "" } else { "+ " };
                (format!("{prefix}{}", matrix.arms[arm].name()), fmt_mean_std((m, s)))
            })
            .unwrap_or_default();
        rows.push(vec![(k + 1).to_string(), cov_name, cov_val, fast_name, fast_val]);
    }
    print_table(
        "Table 8: Combinations maximizing coverage and fastest",
        &["top-k", "Combination (coverage)", "Achieved", "Combination (fastest)", "Achieved"],
        &rows,
    );

    // Shape checks: a handful of strategies nearly exhausts the oracle
    // (paper: 5 strategies -> 94% coverage; 14 -> 100%).
    if let Some(&(_, five_cov, _)) = coverage_steps.get(4) {
        println!(
            "\n[shape-check] 5-strategy portfolio coverage {five_cov:.2} — paper 0.94: {}",
            if five_cov >= 0.85 { "REPRODUCED (>=0.85)" } else { "NOT reproduced" }
        );
    }
    let total = coverage_steps.last().map(|&(_, m, _)| m).unwrap_or(0.0);
    println!(
        "[shape-check] final portfolio coverage {total:.2} — should reach 1.00 by construction: {}",
        if (total - 1.0).abs() < 1e-9 { "REPRODUCED" } else { "NOT reproduced" }
    );
}
