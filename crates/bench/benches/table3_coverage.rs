//! **Table 3** — fraction of Fastest cases and coverage per strategy, under
//! default hyperparameters and under HPO, plus the Original-Features
//! baseline, the meta-learning DFS Optimizer, and the Oracle.
//!
//! Run: `cargo bench --bench table3_coverage`

use dfs_bench::ok_or_exit;
use dfs_bench::corpus::compute_or_load_matrix;
use dfs_bench::{fmt_mean_std, print_table, BenchVersion, CorpusConfig};
use dfs_core::prelude::*;
use dfs_optimizer::{leave_one_dataset_out_pooled, OptimizerConfig};

fn main() {
    let cfg = CorpusConfig::default();
    let (default_matrix, _) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::DefaultParams));
    let (hpo_matrix, hpo_splits) = ok_or_exit(compute_or_load_matrix(&cfg, BenchVersion::Hpo));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (arm_idx, arm) in hpo_matrix.arms.iter().enumerate() {
        rows.push(vec![
            arm.name(),
            fmt_mean_std(default_matrix.fastest_stats(arm_idx)),
            fmt_mean_std(default_matrix.coverage_stats(arm_idx)),
            fmt_mean_std(hpo_matrix.fastest_stats(arm_idx)),
            fmt_mean_std(hpo_matrix.coverage_stats(arm_idx)),
        ]);
    }

    // DFS Optimizer row (leave-one-dataset-out on the HPO corpus).
    eprintln!("[table3] training DFS optimizer (leave-one-dataset-out)…");
    let report = leave_one_dataset_out_pooled(
        &hpo_matrix,
        &[&default_matrix],
        &hpo_splits,
        &OptimizerConfig::default(),
    );
    let optimizer_cov = hpo_matrix.choice_coverage(&report.choices);
    rows.push(vec![
        "DFS Optimizer".into(),
        format!("{:.2}", report.fastest_fraction),
        "-".into(),
        format!("{:.2}", report.fastest_fraction),
        fmt_mean_std(optimizer_cov),
    ]);

    // Oracle: picks the fastest succeeding strategy per scenario -> 1.00.
    rows.push(vec![
        "Oracle".into(),
        "1.00 \u{00b1} 0.00".into(),
        "1.00 \u{00b1} 0.00".into(),
        "1.00 \u{00b1} 0.00".into(),
        "1.00 \u{00b1} 0.00".into(),
    ]);

    print_table(
        "Table 3: Fastest fraction and coverage per strategy",
        &["Strategy", "Fastest (default)", "Coverage (default)", "Fastest (HPO)", "Coverage (HPO)"],
        &rows,
    );
    println!(
        "\nsatisfiable scenarios: default {}/{}  hpo {}/{}",
        default_matrix.satisfiable().len(),
        default_matrix.scenarios.len(),
        hpo_matrix.satisfiable().len(),
        hpo_matrix.scenarios.len(),
    );

    // Sanity expectations from the paper (soft-checked, reported not asserted):
    let cov = |m: &BenchmarkMatrix, arm: Arm| {
        m.arm_index(arm).map(|i| m.coverage_stats(i).0).unwrap_or(0.0)
    };
    let fwd = cov(&hpo_matrix, Arm::Strategy(StrategyId::Sffs));
    let bwd = cov(&hpo_matrix, Arm::Strategy(StrategyId::Sbs));
    println!(
        "\n[shape-check] forward (SFFS {:.2}) vs backward (SBS {:.2}) coverage — paper: forward wins: {}",
        fwd,
        bwd,
        if fwd > bwd { "REPRODUCED" } else { "NOT reproduced" }
    );
    let orig = cov(&hpo_matrix, Arm::Original);
    println!(
        "[shape-check] original-features coverage {:.2} — paper: low (0.21): {}",
        orig,
        if orig < fwd { "REPRODUCED" } else { "NOT reproduced" }
    );
    let (opt_mean, opt_std) = optimizer_cov;
    let best_single = hpo_matrix
        .arms
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a, Arm::Strategy(_)))
        .map(|(i, _)| hpo_matrix.coverage_stats(i))
        .fold((0.0f64, 0.0f64), |acc, s| if s.0 > acc.0 { s } else { acc });
    println!(
        "[shape-check] optimizer coverage {opt_mean:.2}±{opt_std:.2} vs best single {:.2}±{:.2} — paper: optimizer higher mean, lower std: {}",
        best_single.0,
        best_single.1,
        if opt_mean >= best_single.0 - 0.02 { "REPRODUCED (±2%)" } else { "NOT reproduced" }
    );
}
