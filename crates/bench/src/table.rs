//! Plain-text table formatting for the bench harnesses.

/// Formats a `(mean, std)` pair the way the paper prints cells:
/// `0.60 ± 0.22`.
pub fn fmt_mean_std((mean, std): (f64, f64)) -> String {
    format!("{mean:.2} \u{00b1} {std:.2}")
}

/// Prints a titled, column-aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_formatting_matches_paper_style() {
        assert_eq!(fmt_mean_std((0.6049, 0.2201)), "0.60 \u{00b1} 0.22");
        assert_eq!(fmt_mean_std((1.0, 0.0)), "1.00 \u{00b1} 0.00");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_inputs() {
        print_table(
            "t",
            &["a", "long-header"],
            &[vec!["x".into(), "y".into()], vec!["wide-cell".into(), "z".into()]],
        );
    }
}
