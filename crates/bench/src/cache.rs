//! On-disk cache for computed outcome matrices (compact TSV codec).
//!
//! The matrix computation is the expensive part of the harness; every bench
//! that needs it first looks here. The format is a line-oriented TSV keyed
//! by a config fingerprint, written atomically (temp file + rename).
//!
//! Codec v6 carries each cell's [`CellStatus`] (so fault-isolated runs
//! roundtrip losslessly) and its [`EvalPerf`] work counters, including the
//! attack/ranking timing and HPO grid-point fields added with the
//! observability layer, the memo/bound-pruning/warm-start counters
//! added with the cross-arm evaluation memo, and the chunked-evaluator
//! block counter added with the streaming evaluator. A file that
//! fails validation — wrong version, truncated, or garbled — is never
//! trusted partially: [`load`] quarantines it (renames it aside with a
//! `.quarantined` suffix) and the caller recomputes. The per-cell line
//! codec is shared with the incremental checkpoint sidecar
//! ([`crate::checkpoint`]).

use crate::corpus::{BenchVersion, CorpusConfig};
use dfs_constraints::ConstraintSet;
use dfs_core::error::{DfsError, DfsResult};
use dfs_core::runner::{Arm, BenchmarkMatrix, CellResult, CellStatus};
use dfs_core::{EvalPerf, MlScenario};
use dfs_models::ModelKind;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Cache file location for a (config, version) pair.
pub fn cache_path(cfg: &CorpusConfig, version: BenchVersion) -> PathBuf {
    let dir = std::env::var("DFS_BENCH_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("dfs-bench-cache"));
    let fingerprint = fingerprint(cfg);
    dir.join(format!("matrix-{}-{fingerprint:016x}.tsv", version.tag()))
}

/// FNV-1a fingerprint of everything that determines the matrix contents.
/// Also keys the checkpoint sidecar, so stale partial rows from a different
/// configuration can never leak into a resumed run.
pub fn fingerprint(cfg: &CorpusConfig) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x100000001b3);
    };
    for (name, cap) in &cfg.datasets {
        for b in name.bytes() {
            mix(b as u64);
        }
        mix(*cap as u64);
    }
    mix(cfg.scenarios_per_dataset as u64);
    mix(cfg.time_range.0.as_millis() as u64);
    mix(cfg.time_range.1.as_millis() as u64);
    mix(cfg.seed);
    // DT measurements can differ across split kernels, so each exactness
    // mode gets its own cache file (and checkpoint sidecar). Active GOSS
    // subsampling likewise changes binned DT measurements; inactive pairs
    // run the unsampled kernel bit-for-bit and share its file.
    mix(cfg.exactness.fingerprint());
    if cfg.exactness.code_width().is_some() {
        if let Some((top, rest)) = cfg.goss {
            if top + rest < 1.0 {
                mix(0x6055);
                mix(top.to_bits());
                mix(rest.to_bits());
            }
        }
    }
    h
}

/// Serializes a matrix to the TSV codec (v5).
///
/// Errors with [`DfsError::CacheEncode`] on a non-canonical arm set — the
/// compact codec stores no arm column, so only `Arm::all()` matrices are
/// representable.
pub fn encode(matrix: &BenchmarkMatrix) -> DfsResult<String> {
    let mut out = String::new();
    let canonical = Arm::all();
    if matrix.arms != canonical {
        return Err(DfsError::CacheEncode {
            reason: format!(
                "non-canonical arm set ({} arms, expected the canonical {})",
                matrix.arms.len(),
                canonical.len()
            ),
        });
    }
    let _ = writeln!(out, "#dfs-matrix\tv6\t{}\t{}", matrix.scenarios.len(), matrix.arms.len());
    for (s, row) in matrix.scenarios.iter().zip(&matrix.results) {
        let c = &s.constraints;
        let _ = writeln!(
            out,
            "S\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.dataset,
            s.model.short_name(),
            s.hpo as u8,
            s.utility_f1 as u8,
            s.seed,
            c.min_f1,
            c.max_search_time.as_secs_f64(),
            c.max_feature_frac.unwrap_or(-1.0),
            c.min_eo.unwrap_or(-1.0),
            c.min_safety.unwrap_or(-1.0),
            c.privacy_epsilon.unwrap_or(-1.0),
        );
        for cell in row {
            encode_cell(&mut out, cell);
        }
    }
    Ok(out)
}

/// Writes one `R` result line (v6: leading one-character status code, then
/// the metrics, then the fifteen [`EvalPerf`] work counters).
pub(crate) fn encode_cell(out: &mut String, cell: &CellResult) {
    let p = &cell.perf;
    let _ = writeln!(
        out,
        "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        cell.status.code(),
        cell.success as u8,
        cell.elapsed.as_secs_f64(),
        cell.val_distance,
        cell.test_distance,
        cell.evaluations,
        cell.test_f1,
        cell.subset_size,
        p.model_fits,
        p.cache_hits,
        p.ranking_computes,
        p.ranking_hits,
        p.val_gathers,
        p.gather_ns,
        p.train_ns,
        p.attack_ns,
        p.ranking_ns,
        p.hpo_grid_points,
        p.memo_hits,
        p.memo_misses,
        p.bound_skips,
        p.warm_starts,
        p.eval_blocks,
    );
}

/// Parses one tab-split `R` line (`fields[0] == "R"`, 24 fields). Every
/// field is validated — a truncated or bit-flipped line is an error, never
/// a silently wrong cell.
pub(crate) fn decode_cell(fields: &[&str]) -> Result<CellResult, String> {
    if fields.len() != 24 {
        return Err(format!("result line has {} fields, expected 24", fields.len()));
    }
    let parse = |i: usize| -> Result<f64, String> {
        fields[i].parse().map_err(|e| format!("result field {i}: {e}"))
    };
    let count = |i: usize| -> Result<u64, String> {
        fields[i].parse().map_err(|e| format!("result field {i}: {e}"))
    };
    let status = match fields[1].as_bytes() {
        [c] => CellStatus::from_code(*c as char)
            .ok_or_else(|| format!("unknown cell status '{}'", fields[1]))?,
        _ => return Err(format!("unknown cell status '{}'", fields[1])),
    };
    let success = match fields[2] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad success flag '{other}'")),
    };
    let val = parse(3)?;
    if val.is_nan() {
        return Err("negative or NaN elapsed".into());
    }
    let elapsed = Duration::try_from_secs_f64(val).map_err(|e| e.to_string())?;
    Ok(CellResult {
        status,
        success,
        elapsed,
        val_distance: parse(4)?,
        test_distance: parse(5)?,
        evaluations: fields[6].parse().map_err(|e| format!("result field 6: {e}"))?,
        test_f1: parse(7)?,
        subset_size: fields[8].parse().map_err(|e| format!("result field 8: {e}"))?,
        perf: EvalPerf {
            model_fits: count(9)?,
            cache_hits: count(10)?,
            ranking_computes: count(11)?,
            ranking_hits: count(12)?,
            val_gathers: count(13)?,
            gather_ns: count(14)?,
            train_ns: count(15)?,
            attack_ns: count(16)?,
            ranking_ns: count(17)?,
            hpo_grid_points: count(18)?,
            memo_hits: count(19)?,
            memo_misses: count(20)?,
            bound_skips: count(21)?,
            warm_starts: count(22)?,
            eval_blocks: count(23)?,
        },
    })
}

/// Parses the TSV codec back into a matrix.
pub fn decode(s: &str) -> Result<BenchmarkMatrix, String> {
    let mut lines = s.lines();
    let header = lines.next().ok_or("empty cache file")?;
    let head: Vec<&str> = header.split('\t').collect();
    if head.len() != 4 || head[0] != "#dfs-matrix" {
        return Err(format!("bad header '{header}'"));
    }
    if head[1] != "v6" {
        return Err(format!("unsupported cache version '{}' (this build reads v6)", head[1]));
    }
    let n_scenarios: usize = head[2].parse().map_err(|e| format!("bad count: {e}"))?;
    let n_arms: usize = head[3].parse().map_err(|e| format!("bad arm count: {e}"))?;
    let arms = Arm::all();
    if arms.len() != n_arms {
        return Err(format!("arm count {n_arms} != canonical {}", arms.len()));
    }

    let mut scenarios = Vec::with_capacity(n_scenarios);
    let mut results: Vec<Vec<CellResult>> = Vec::with_capacity(n_scenarios);
    for line in lines {
        let cells: Vec<&str> = line.split('\t').collect();
        match cells.first() {
            Some(&"S") => {
                if cells.len() != 12 {
                    return Err(format!("bad scenario line '{line}'"));
                }
                let opt = |v: f64| if v < 0.0 { None } else { Some(v) };
                let parse =
                    |i: usize| -> Result<f64, String> { cells[i].parse().map_err(|e| format!("{line}: {e}")) };
                let model = match cells[2] {
                    "LR" => ModelKind::LogisticRegression,
                    "NB" => ModelKind::GaussianNb,
                    "DT" => ModelKind::DecisionTree,
                    "SVM" => ModelKind::LinearSvm,
                    other => return Err(format!("unknown model '{other}'")),
                };
                let secs = parse(7)?;
                if secs.is_nan() {
                    return Err(format!("{line}: NaN search time"));
                }
                scenarios.push(MlScenario {
                    dataset: cells[1].to_string(),
                    model,
                    hpo: cells[3] == "1",
                    utility_f1: cells[4] == "1",
                    seed: cells[5].parse().map_err(|e| format!("{line}: {e}"))?,
                    constraints: ConstraintSet {
                        min_f1: parse(6)?,
                        max_search_time: Duration::try_from_secs_f64(secs)
                            .map_err(|e| format!("{line}: {e}"))?,
                        max_feature_frac: opt(parse(8)?),
                        min_eo: opt(parse(9)?),
                        min_safety: opt(parse(10)?),
                        privacy_epsilon: opt(parse(11)?),
                    },
                });
                results.push(Vec::with_capacity(n_arms));
            }
            Some(&"R") => {
                let row = results.last_mut().ok_or("result before scenario")?;
                if row.len() >= n_arms {
                    return Err("too many result lines for scenario".into());
                }
                row.push(decode_cell(&cells).map_err(|e| format!("{line}: {e}"))?);
            }
            _ => return Err(format!("unknown line kind '{line}'")),
        }
    }
    if scenarios.len() != n_scenarios {
        return Err(format!("expected {n_scenarios} scenarios, got {}", scenarios.len()));
    }
    if results.iter().any(|r| r.len() != n_arms) {
        return Err("ragged result rows (truncated file?)".into());
    }
    Ok(BenchmarkMatrix { arms, scenarios, results })
}

/// Moves a corrupt file aside as `<path>.quarantined` so the recompute can
/// write fresh while the bad bytes stay available for inspection.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let dest = PathBuf::from(format!("{}.quarantined", path.display()));
    match std::fs::rename(path, &dest) {
        Ok(()) => {
            dfs_obs::counter("cache.quarantined", 1);
            Some(dest)
        }
        Err(e) => {
            dfs_obs::warn!("dfs-bench", "could not quarantine {}: {e}", path.display());
            None
        }
    }
}

/// Loads a cached matrix; `None` when the file is missing. A file that
/// fails validation (old version, truncation, corruption) is quarantined
/// and `None` is returned so the caller recomputes.
pub fn load(path: &Path) -> Option<BenchmarkMatrix> {
    let s = std::fs::read_to_string(path).ok()?;
    match decode(&s) {
        Ok(m) => Some(m),
        Err(reason) => {
            let err = DfsError::CacheCorrupt { path: path.to_path_buf(), reason };
            match quarantine(path) {
                Some(dest) => dfs_obs::warn!(
                    "dfs-bench",
                    "{err}; quarantined to {}",
                    dest.display()
                ),
                None => dfs_obs::warn!("dfs-bench", "{err}"),
            }
            None
        }
    }
}

/// Saves a matrix atomically (temp file + rename).
pub fn save(path: &Path, matrix: &BenchmarkMatrix) -> DfsResult<()> {
    let encoded = encode(matrix)?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| DfsError::Io { path: dir.to_path_buf(), source: e })?;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encoded).map_err(|e| DfsError::Io { path: tmp.clone(), source: e })?;
    std::fs::rename(&tmp, path).map_err(|e| DfsError::Io { path: path.to_path_buf(), source: e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_fs::StrategyId;

    fn sample_matrix() -> BenchmarkMatrix {
        let arms = Arm::all();
        let scenario = MlScenario {
            dataset: "compas".into(),
            model: ModelKind::GaussianNb,
            hpo: true,
            utility_f1: false,
            seed: 42,
            constraints: ConstraintSet {
                min_f1: 0.6,
                max_search_time: Duration::from_millis(250),
                max_feature_frac: Some(0.4),
                min_eo: None,
                min_safety: Some(0.85),
                privacy_epsilon: None,
            },
        };
        let row: Vec<CellResult> = (0..arms.len())
            .map(|i| CellResult {
                status: match i % 4 {
                    0 => CellStatus::Ok,
                    1 => CellStatus::Panicked,
                    2 => CellStatus::TimedOut,
                    _ => CellStatus::Skipped,
                },
                success: i % 3 == 0,
                elapsed: Duration::from_micros(100 + i as u64),
                val_distance: 0.01 * i as f64,
                test_distance: 0.02 * i as f64,
                evaluations: i,
                test_f1: 0.5 + 0.01 * i as f64,
                subset_size: i + 1,
                perf: EvalPerf {
                    model_fits: i as u64,
                    cache_hits: 2 * i as u64,
                    ranking_computes: (i % 3) as u64,
                    ranking_hits: (i % 5) as u64,
                    val_gathers: (i % 2) as u64,
                    gather_ns: 1_000 + i as u64,
                    train_ns: 2_000 + i as u64,
                    attack_ns: 3_000 + i as u64,
                    ranking_ns: 4_000 + i as u64,
                    hpo_grid_points: (i % 7) as u64,
                    memo_hits: (i % 4) as u64,
                    memo_misses: 5 + i as u64,
                    bound_skips: (i % 6) as u64,
                    warm_starts: (i % 3) as u64,
                    eval_blocks: (i % 5) as u64,
                },
            })
            .collect();
        BenchmarkMatrix { arms, scenarios: vec![scenario], results: vec![row] }
    }

    #[test]
    fn roundtrip_preserves_everything_including_statuses() {
        let m = sample_matrix();
        let decoded = decode(&encode(&m).expect("encode")).expect("roundtrip");
        assert_eq!(decoded.scenarios.len(), 1);
        let s = &decoded.scenarios[0];
        assert_eq!(s.dataset, "compas");
        assert_eq!(s.model, ModelKind::GaussianNb);
        assert!(s.hpo);
        assert_eq!(s.constraints.min_f1, 0.6);
        assert_eq!(s.constraints.max_feature_frac, Some(0.4));
        assert_eq!(s.constraints.min_eo, None);
        assert_eq!(s.constraints.min_safety, Some(0.85));
        for (a, b) in m.results[0].iter().zip(&decoded.results[0]) {
            assert_eq!(a.status, b.status);
            assert_eq!(a.success, b.success);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.subset_size, b.subset_size);
            assert_eq!(a.perf, b.perf, "perf counters must roundtrip exactly");
            assert!((a.val_distance - b.val_distance).abs() < 1e-12);
        }
        // The canonical arm set includes Original + 16 strategies.
        assert_eq!(decoded.arms.len(), 17);
        assert!(decoded.arms.contains(&Arm::Strategy(StrategyId::Sffs)));
    }

    #[test]
    fn infinite_distances_of_faulted_cells_roundtrip() {
        let mut m = sample_matrix();
        m.results[0][1] = CellResult::faulted(CellStatus::Panicked, Duration::from_millis(7));
        let decoded = decode(&encode(&m).expect("encode")).expect("roundtrip");
        let cell = &decoded.results[0][1];
        assert_eq!(cell.status, CellStatus::Panicked);
        assert!(cell.val_distance.is_infinite() && cell.test_distance.is_infinite());
        assert!(!cell.success);
    }

    #[test]
    fn encode_rejects_non_canonical_arm_sets() {
        let mut m = sample_matrix();
        m.arms.truncate(3);
        match encode(&m) {
            Err(DfsError::CacheEncode { reason }) => assert!(reason.contains("non-canonical")),
            other => panic!("expected CacheEncode error, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("").is_err());
        // Older codecs (v1 pre-status, v2 pre-perf, v3 pre-obs-counters,
        // v4 pre-memo-counters, v5 pre-eval-blocks) are a version
        // mismatch, not a panic; so is any future version.
        for old in ["v1", "v2", "v3", "v4", "v5"] {
            assert!(decode(&format!("#dfs-matrix\t{old}\t0\t17\n"))
                .is_err_and(|e| e.contains("unsupported cache version")));
        }
        assert!(decode("#dfs-matrix\tv7\t0\t17\n").is_err());
        assert!(decode("#dfs-matrix\tv6\t1\t17\nX\tfoo\n").is_err());
        // Wrong arm count.
        assert!(decode("#dfs-matrix\tv6\t0\t3\n").is_err());
    }

    #[test]
    fn decode_rejects_truncated_files() {
        let encoded = encode(&sample_matrix()).expect("encode");
        // Cut mid-way through the result block: ragged row.
        let cut = encoded.len() / 2;
        let truncated = &encoded[..encoded[..cut].rfind('\n').expect("newline") + 1];
        assert!(decode(truncated).is_err());
        // Cut mid-line: the partial R line has too few fields.
        assert!(decode(&encoded[..encoded.len() - 10]).is_err());
    }

    #[test]
    fn decode_rejects_bitflipped_fields() {
        let encoded = encode(&sample_matrix()).expect("encode");
        // Flip the status code of the first result line to an unknown byte.
        let pos = encoded.find("\nR\t").expect("result line") + 3;
        let mut flipped = encoded.clone().into_bytes();
        flipped[pos] ^= 0x10;
        let flipped = String::from_utf8(flipped).expect("utf8");
        assert!(decode(&flipped).is_err_and(|e| e.contains("status")));
        // Garble a numeric field.
        let garbled = encoded.replacen("0.01", "0.0x1", 1);
        assert!(decode(&garbled).is_err());
    }

    #[test]
    fn exactness_modes_get_separate_cache_files() {
        use dfs_models::SplitExactness;
        let binned = CorpusConfig::default();
        assert_eq!(binned.exactness, SplitExactness::Binned256);
        let presorted = CorpusConfig { exactness: SplitExactness::Presorted, ..binned.clone() };
        assert_ne!(fingerprint(&binned), fingerprint(&presorted));
        assert_ne!(
            cache_path(&binned, BenchVersion::Hpo),
            cache_path(&presorted, BenchVersion::Hpo)
        );
        // The wide-bin kernel is its own mode, too.
        let wide = CorpusConfig { exactness: SplitExactness::Binned4096, ..binned.clone() };
        assert_ne!(fingerprint(&binned), fingerprint(&wide));
        // Active GOSS changes binned measurements: separate file. Inactive
        // pairs and presorted fits run the unsampled kernel bit-for-bit
        // and share the plain file.
        let goss = CorpusConfig { goss: Some((0.1, 0.1)), ..binned.clone() };
        assert_ne!(fingerprint(&binned), fingerprint(&goss));
        let inert = CorpusConfig { goss: Some((0.8, 0.4)), ..binned.clone() };
        assert_eq!(fingerprint(&binned), fingerprint(&inert));
        let presorted_goss = CorpusConfig { goss: Some((0.1, 0.1)), ..presorted.clone() };
        assert_eq!(fingerprint(&presorted), fingerprint(&presorted_goss));
    }

    #[test]
    fn file_roundtrip_via_save_load() {
        let m = sample_matrix();
        let dir = std::env::temp_dir().join("dfs-cache-test");
        let path = dir.join("m.tsv");
        save(&path, &m).expect("save");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.scenarios[0].seed, 42);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).is_none());
    }

    #[test]
    fn load_quarantines_corrupt_files() {
        let dir = std::env::temp_dir().join("dfs-cache-test-quarantine");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.tsv");
        let qpath = PathBuf::from(format!("{}.quarantined", path.display()));
        std::fs::remove_file(&qpath).ok();
        // A v5 file from the previous build is quarantined like any other
        // version mismatch — the recompute writes fresh v6 bytes.
        std::fs::write(&path, "#dfs-matrix\tv5\t0\t17\n").expect("write");
        dfs_obs::set_trace_enabled(true);
        let (loaded, collected) = dfs_obs::scoped(|| load(&path));
        assert!(loaded.is_none());
        // The bad file was moved aside, not deleted and not left in place.
        assert!(!path.exists());
        assert!(qpath.exists());
        // The quarantine is observable: a counter plus a warn event.
        let collected = collected.expect("collector");
        assert_eq!(
            collected.counters().get("cache.quarantined").copied(),
            Some(1),
            "quarantine must bump its obs counter: {:?}",
            collected.counters()
        );
        assert!(
            collected.events().iter().any(|e| format!("{e:?}").contains("quarantined")),
            "quarantine must leave a journal entry"
        );
        std::fs::remove_file(&qpath).ok();
    }
}
