//! On-disk cache for computed outcome matrices (compact TSV codec).
//!
//! The matrix computation is the expensive part of the harness; every bench
//! that needs it first looks here. The format is a line-oriented TSV keyed
//! by a config fingerprint, written atomically (temp file + rename).

use crate::corpus::{BenchVersion, CorpusConfig};
use dfs_constraints::ConstraintSet;
use dfs_core::runner::{Arm, BenchmarkMatrix, CellResult};
use dfs_core::MlScenario;
use dfs_models::ModelKind;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Cache file location for a (config, version) pair.
pub fn cache_path(cfg: &CorpusConfig, version: BenchVersion) -> PathBuf {
    let dir = std::env::var("DFS_BENCH_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("dfs-bench-cache"));
    let fingerprint = fingerprint(cfg);
    dir.join(format!("matrix-{}-{fingerprint:016x}.tsv", version.tag()))
}

fn fingerprint(cfg: &CorpusConfig) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x100000001b3);
    };
    for (name, cap) in &cfg.datasets {
        for b in name.bytes() {
            mix(b as u64);
        }
        mix(*cap as u64);
    }
    mix(cfg.scenarios_per_dataset as u64);
    mix(cfg.time_range.0.as_millis() as u64);
    mix(cfg.time_range.1.as_millis() as u64);
    mix(cfg.seed);
    h
}

/// Serializes a matrix to the TSV codec.
pub fn encode(matrix: &BenchmarkMatrix) -> String {
    let mut out = String::new();
    let canonical = Arm::all();
    assert_eq!(matrix.arms, canonical, "cache codec assumes canonical arm order");
    let _ = writeln!(out, "#dfs-matrix\tv1\t{}\t{}", matrix.scenarios.len(), matrix.arms.len());
    for (s, row) in matrix.scenarios.iter().zip(&matrix.results) {
        let c = &s.constraints;
        let _ = writeln!(
            out,
            "S\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.dataset,
            s.model.short_name(),
            s.hpo as u8,
            s.utility_f1 as u8,
            s.seed,
            c.min_f1,
            c.max_search_time.as_secs_f64(),
            c.max_feature_frac.unwrap_or(-1.0),
            c.min_eo.unwrap_or(-1.0),
            c.min_safety.unwrap_or(-1.0),
            c.privacy_epsilon.unwrap_or(-1.0),
        );
        for cell in row {
            let _ = writeln!(
                out,
                "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                cell.success as u8,
                cell.elapsed.as_secs_f64(),
                cell.val_distance,
                cell.test_distance,
                cell.evaluations,
                cell.test_f1,
                cell.subset_size,
            );
        }
    }
    out
}

/// Parses the TSV codec back into a matrix.
pub fn decode(s: &str) -> Result<BenchmarkMatrix, String> {
    let mut lines = s.lines();
    let header = lines.next().ok_or("empty cache file")?;
    let head: Vec<&str> = header.split('\t').collect();
    if head.len() != 4 || head[0] != "#dfs-matrix" || head[1] != "v1" {
        return Err(format!("bad header '{header}'"));
    }
    let n_scenarios: usize = head[2].parse().map_err(|e| format!("bad count: {e}"))?;
    let n_arms: usize = head[3].parse().map_err(|e| format!("bad arm count: {e}"))?;
    let arms = Arm::all();
    if arms.len() != n_arms {
        return Err(format!("arm count {n_arms} != canonical {}", arms.len()));
    }

    let mut scenarios = Vec::with_capacity(n_scenarios);
    let mut results: Vec<Vec<CellResult>> = Vec::with_capacity(n_scenarios);
    for line in lines {
        let cells: Vec<&str> = line.split('\t').collect();
        match cells.first() {
            Some(&"S") => {
                if cells.len() != 12 {
                    return Err(format!("bad scenario line '{line}'"));
                }
                let opt = |v: f64| if v < 0.0 { None } else { Some(v) };
                let parse =
                    |i: usize| -> Result<f64, String> { cells[i].parse().map_err(|e| format!("{line}: {e}")) };
                let model = match cells[2] {
                    "LR" => ModelKind::LogisticRegression,
                    "NB" => ModelKind::GaussianNb,
                    "DT" => ModelKind::DecisionTree,
                    "SVM" => ModelKind::LinearSvm,
                    other => return Err(format!("unknown model '{other}'")),
                };
                scenarios.push(MlScenario {
                    dataset: cells[1].to_string(),
                    model,
                    hpo: cells[3] == "1",
                    utility_f1: cells[4] == "1",
                    seed: cells[5].parse().map_err(|e| format!("{line}: {e}"))?,
                    constraints: ConstraintSet {
                        min_f1: parse(6)?,
                        max_search_time: Duration::from_secs_f64(parse(7)?),
                        max_feature_frac: opt(parse(8)?),
                        min_eo: opt(parse(9)?),
                        min_safety: opt(parse(10)?),
                        privacy_epsilon: opt(parse(11)?),
                    },
                });
                results.push(Vec::with_capacity(n_arms));
            }
            Some(&"R") => {
                if cells.len() != 8 {
                    return Err(format!("bad result line '{line}'"));
                }
                let parse =
                    |i: usize| -> Result<f64, String> { cells[i].parse().map_err(|e| format!("{line}: {e}")) };
                let row = results.last_mut().ok_or("result before scenario")?;
                row.push(CellResult {
                    success: cells[1] == "1",
                    elapsed: Duration::from_secs_f64(parse(2)?),
                    val_distance: parse(3)?,
                    test_distance: parse(4)?,
                    evaluations: cells[5].parse().map_err(|e| format!("{line}: {e}"))?,
                    test_f1: parse(6)?,
                    subset_size: cells[7].parse().map_err(|e| format!("{line}: {e}"))?,
                });
            }
            _ => return Err(format!("unknown line kind '{line}'")),
        }
    }
    if scenarios.len() != n_scenarios {
        return Err(format!("expected {n_scenarios} scenarios, got {}", scenarios.len()));
    }
    if results.iter().any(|r| r.len() != n_arms) {
        return Err("ragged result rows".into());
    }
    Ok(BenchmarkMatrix { arms, scenarios, results })
}

/// Loads a cached matrix; `None` when missing or unreadable.
pub fn load(path: &Path) -> Option<BenchmarkMatrix> {
    let s = std::fs::read_to_string(path).ok()?;
    match decode(&s) {
        Ok(m) => Some(m),
        Err(e) => {
            eprintln!("[dfs-bench] ignoring corrupt cache {}: {e}", path.display());
            None
        }
    }
}

/// Saves a matrix atomically.
pub fn save(path: &Path, matrix: &BenchmarkMatrix) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, encode(matrix)).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_fs::StrategyId;

    fn sample_matrix() -> BenchmarkMatrix {
        let arms = Arm::all();
        let scenario = MlScenario {
            dataset: "compas".into(),
            model: ModelKind::GaussianNb,
            hpo: true,
            utility_f1: false,
            seed: 42,
            constraints: ConstraintSet {
                min_f1: 0.6,
                max_search_time: Duration::from_millis(250),
                max_feature_frac: Some(0.4),
                min_eo: None,
                min_safety: Some(0.85),
                privacy_epsilon: None,
            },
        };
        let row: Vec<CellResult> = (0..arms.len())
            .map(|i| CellResult {
                success: i % 3 == 0,
                elapsed: Duration::from_micros(100 + i as u64),
                val_distance: 0.01 * i as f64,
                test_distance: 0.02 * i as f64,
                evaluations: i,
                test_f1: 0.5 + 0.01 * i as f64,
                subset_size: i + 1,
            })
            .collect();
        BenchmarkMatrix { arms, scenarios: vec![scenario], results: vec![row] }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = sample_matrix();
        let decoded = decode(&encode(&m)).expect("roundtrip");
        assert_eq!(decoded.scenarios.len(), 1);
        let s = &decoded.scenarios[0];
        assert_eq!(s.dataset, "compas");
        assert_eq!(s.model, ModelKind::GaussianNb);
        assert!(s.hpo);
        assert_eq!(s.constraints.min_f1, 0.6);
        assert_eq!(s.constraints.max_feature_frac, Some(0.4));
        assert_eq!(s.constraints.min_eo, None);
        assert_eq!(s.constraints.min_safety, Some(0.85));
        for (a, b) in m.results[0].iter().zip(&decoded.results[0]) {
            assert_eq!(a.success, b.success);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.subset_size, b.subset_size);
            assert!((a.val_distance - b.val_distance).abs() < 1e-12);
        }
        // The canonical arm set includes Original + 16 strategies.
        assert_eq!(decoded.arms.len(), 17);
        assert!(decoded.arms.contains(&Arm::Strategy(StrategyId::Sffs)));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("").is_err());
        assert!(decode("#dfs-matrix\tv2\t0\t17\n").is_err());
        assert!(decode("#dfs-matrix\tv1\t1\t17\nX\tfoo\n").is_err());
        // Wrong arm count.
        assert!(decode("#dfs-matrix\tv1\t0\t3\n").is_err());
    }

    #[test]
    fn file_roundtrip_via_save_load() {
        let m = sample_matrix();
        let dir = std::env::temp_dir().join("dfs-cache-test");
        let path = dir.join("m.tsv");
        save(&path, &m);
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.scenarios[0].seed, 42);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).is_none());
    }
}
