//! Benchmark corpus: datasets, scenario sampling, and matrix computation.

use crate::checkpoint::Checkpoint;
use dfs_core::prelude::*;
use dfs_core::runner::{run_benchmark_opts, RunnerOptions};
use dfs_data::split::{stratified_three_way, Split};
use dfs_data::synthetic::{generate, spec_by_name};
use dfs_linalg::rng::rng_from_seed;
use std::collections::HashMap;
use std::time::Duration;

/// The three benchmark versions of § 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchVersion {
    /// Default model hyperparameters (paper: 1500 scenarios).
    DefaultParams,
    /// Grid-search HPO per evaluation (paper: 3318 scenarios).
    Hpo,
    /// F1-as-utility subject to the other constraints (paper: 957).
    Utility,
}

impl BenchVersion {
    /// Cache-file tag.
    pub fn tag(&self) -> &'static str {
        match self {
            BenchVersion::DefaultParams => "default",
            BenchVersion::Hpo => "hpo",
            BenchVersion::Utility => "utility",
        }
    }
}

/// Corpus configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Dataset names (subset of the 19-dataset suite) and a per-dataset
    /// row cap that keeps the harness laptop-scale while preserving the
    /// relative size ordering.
    pub datasets: Vec<(&'static str, usize)>,
    /// Scenarios sampled per dataset.
    pub scenarios_per_dataset: usize,
    /// Search-time range (the scaled-down Listing 1 budget).
    pub time_range: (Duration, Duration),
    /// Master seed.
    pub seed: u64,
    /// Worker threads for matrix computation.
    pub threads: usize,
    /// Decision-tree split kernel for every scenario of the matrix. Part
    /// of the cache fingerprint: matrices computed under different kernels
    /// live in different TSV files and never mix.
    pub exactness: SplitExactness,
    /// GOSS-style per-node row subsampling `(top_frac, rest_frac)` for
    /// binned DT fits of every scenario. Active pairs enter the cache
    /// fingerprint (they change DT measurements); `None` and inactive
    /// pairs run the exact kernel bit-for-bit.
    pub goss: Option<(f64, f64)>,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        let scenarios_per_dataset = std::env::var("DFS_BENCH_SCENARIOS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        Self {
            // Ten datasets spanning the suite's size range; the traffic
            // stand-in stays the largest so the scalability findings
            // (heavy rankings / backward selection dying there) reproduce.
            // Widths span 11..160 features. The paper's two extreme
            // datasets (KDD: 526, PBC: 723 one-hot features) are omitted:
            // at this harness's budget scale a single forward-selection
            // round over 500+ features exceeds the whole budget, which
            // would distort the forward/backward comparison rather than
            // scale it (see DESIGN.md on budget scaling).
            datasets: vec![
                ("traffic_violations", 8000),
                ("airlines_codrna_adult", 6000),
                ("adult", 4800),
                ("german_credit", 1000),
                ("thyroid_disease", 3772),
                ("telco_churn", 4300),
                ("students", 3892),
                ("compas", 4200),
                ("irish_educational", 500),
                ("indian_liver_patient", 583),
            ],
            scenarios_per_dataset,
            time_range: (Duration::from_millis(80), Duration::from_millis(2000)),
            seed: 2021,
            threads: std::thread::available_parallelism().map(|p| p.get().min(8)).unwrap_or(4),
            exactness: SplitExactness::default(),
            goss: None,
        }
    }
}

/// Generates and splits every corpus dataset (seeded, deterministic).
///
/// A config naming a dataset with no known generator is a configuration
/// error ([`DfsError::UnknownDataset`]), reported before any compute is
/// spent rather than as a panic mid-run.
pub fn build_splits(cfg: &CorpusConfig) -> DfsResult<HashMap<String, Split>> {
    cfg.datasets
        .iter()
        .map(|&(name, row_cap)| {
            let mut spec = spec_by_name(name)
                .ok_or_else(|| DfsError::UnknownDataset { dataset: name.to_string() })?;
            spec.rows = spec.rows.min(row_cap);
            let ds = generate(&spec, cfg.seed ^ hash_name(name));
            let split = stratified_three_way(&ds, cfg.seed ^ 0x5517);
            Ok((name.to_string(), split))
        })
        .collect()
}

/// Samples the scenario corpus for one benchmark version (Listing 1).
pub fn build_scenarios(cfg: &CorpusConfig, version: BenchVersion) -> Vec<MlScenario> {
    let sampler = SamplerConfig {
        time_range: cfg.time_range,
        hpo: version != BenchVersion::DefaultParams,
        utility_f1: version == BenchVersion::Utility,
    };
    let mut rng = rng_from_seed(cfg.seed ^ 0xC0FFEE ^ version.tag().len() as u64);
    let mut scenarios = Vec::new();
    let mut id = 0u64;
    for &(name, _) in &cfg.datasets {
        for _ in 0..cfg.scenarios_per_dataset {
            scenarios.push(sample_scenario(name, &sampler, &mut rng, id));
            id += 1;
        }
    }
    scenarios
}

/// Scenario-execution settings used by all benches.
pub fn bench_settings() -> ScenarioSettings {
    let mut s = ScenarioSettings::default_bench();
    // The wall clock (the scenario's Max Search Time) is the binding
    // budget, as in the paper; the evaluation cap is only a runaway guard.
    s.max_evals = 5_000;
    s.max_train_rows = 350;
    s.attack.max_points = 12;
    s
}

/// Computes the outcome matrix for a version, or loads it from the disk
/// cache when the same configuration was computed before.
///
/// The computation checkpoints every completed scenario row to a sidecar
/// next to the cache file; if the process dies mid-matrix, the next call
/// with the same configuration resumes from the sidecar and recomputes only
/// the missing rows. A corrupt cache or sidecar is quarantined and treated
/// as absent.
pub fn compute_or_load_matrix(
    cfg: &CorpusConfig,
    version: BenchVersion,
) -> DfsResult<(BenchmarkMatrix, HashMap<String, Split>)> {
    // The harness narration (cache hits, resume, matrix progress) is part
    // of the expected stderr output; keep it visible unless the user set
    // an explicit DFS_LOG filter.
    if std::env::var_os("DFS_LOG").is_none() {
        dfs_obs::set_log_level(dfs_obs::Level::Info);
    }
    let splits = build_splits(cfg)?;
    let path = crate::cache::cache_path(cfg, version);
    if let Some(matrix) = crate::cache::load(&path) {
        dfs_obs::info!("dfs-bench", "loaded cached matrix from {}", path.display());
        return Ok((matrix, splits));
    }
    let scenarios = build_scenarios(cfg, version);
    let arms = Arm::all();
    let fingerprint = crate::cache::fingerprint(cfg);
    let ckpt_path = Checkpoint::sidecar_path(&path);
    let resume = Checkpoint::load_rows(&ckpt_path, fingerprint, scenarios.len(), arms.len());
    if !resume.is_empty() {
        dfs_obs::info!(
            "dfs-bench",
            "resuming from checkpoint {}: {} of {} rows already computed",
            ckpt_path.display(),
            resume.len(),
            scenarios.len()
        );
    }
    dfs_obs::info!(
        "dfs-bench",
        "computing {} matrix: {} scenarios x {} arms ({} threads)…",
        version.tag(),
        scenarios.len(),
        arms.len(),
        cfg.threads
    );
    let mut settings = bench_settings();
    settings.exactness = cfg.exactness;
    settings.goss = cfg.goss;
    let ckpt = Checkpoint::start(ckpt_path, fingerprint, scenarios.len(), arms.len(), &resume);
    let sink = |i: usize, row: &[CellResult]| ckpt.append_row(i, row);
    let observer = dfs_obs::RunObserver::new(format!("matrix-{}", version.tag()));
    let opts = RunnerOptions {
        threads: cfg.threads,
        resume,
        on_row: Some(&sink),
        observer: dfs_obs::trace_enabled().then_some(&observer),
        ..RunnerOptions::default()
    };
    let matrix = run_benchmark_opts(&splits, scenarios, &arms, &settings, &opts);
    let (ok, panicked, timed_out, skipped) = matrix.status_counts();
    if panicked + timed_out + skipped > 0 {
        dfs_obs::warn!(
            "dfs-bench",
            "matrix completed with faults: {ok} ok, {panicked} panicked, \
             {timed_out} timed out, {skipped} skipped"
        );
    }
    crate::cache::save(&path, &matrix)?;
    ckpt.finish();
    if dfs_obs::trace_enabled() {
        export_traces(&observer);
    }
    Ok((matrix, splits))
}

/// Writes the observer's three export formats (Chrome trace, Prometheus
/// metrics, JSONL journal) under `DFS_TRACE_DIR` (default:
/// `<tmp>/dfs-trace`). Export is best-effort: IO failures warn and the
/// matrix result stands.
pub fn export_traces(observer: &dfs_obs::RunObserver) {
    let dir = dfs_obs::trace_dir();
    match observer.export_to_dir(&dir) {
        Ok(paths) => {
            for path in paths {
                dfs_obs::info!("dfs-bench", "wrote {}", path.display());
            }
        }
        Err(e) => {
            dfs_obs::warn!("dfs-bench", "trace export to {} failed: {e}", dir.display());
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CorpusConfig {
        CorpusConfig {
            datasets: vec![("compas", 200), ("indian_liver_patient", 150)],
            scenarios_per_dataset: 2,
            time_range: (Duration::from_millis(20), Duration::from_millis(50)),
            seed: 7,
            threads: 1,
            exactness: SplitExactness::default(),
            goss: None,
        }
    }

    #[test]
    fn splits_are_built_for_every_dataset() {
        let cfg = tiny_cfg();
        let splits = build_splits(&cfg).expect("splits");
        assert_eq!(splits.len(), 2);
        let compas = &splits["compas"];
        assert_eq!(compas.n_features(), 19); // matches Table 2
        assert!(compas.train.n_rows() > compas.val.n_rows());
    }

    #[test]
    fn scenario_corpus_is_deterministic_and_versioned() {
        let cfg = tiny_cfg();
        let a = build_scenarios(&cfg, BenchVersion::Hpo);
        let b = build_scenarios(&cfg, BenchVersion::Hpo);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].constraints.min_f1, b[0].constraints.min_f1);
        assert!(a.iter().all(|s| s.hpo && !s.utility_f1));
        let u = build_scenarios(&cfg, BenchVersion::Utility);
        assert!(u.iter().all(|s| s.hpo && s.utility_f1));
        let d = build_scenarios(&cfg, BenchVersion::DefaultParams);
        assert!(d.iter().all(|s| !s.hpo));
    }

    #[test]
    fn unknown_dataset_is_a_structured_error_not_a_panic() {
        let mut cfg = tiny_cfg();
        cfg.datasets.push(("no_such_dataset", 100));
        match build_splits(&cfg) {
            Err(DfsError::UnknownDataset { dataset }) => assert_eq!(dataset, "no_such_dataset"),
            other => panic!("expected UnknownDataset, got {:?}", other.map(|m| m.len())),
        }
    }

    #[test]
    fn end_to_end_matrix_on_a_micro_corpus() {
        let cfg = tiny_cfg();
        let splits = build_splits(&cfg).expect("splits");
        let scenarios = build_scenarios(&cfg, BenchVersion::DefaultParams);
        let mut settings = bench_settings();
        settings.max_evals = 15;
        // Two cheap arms keep the test quick.
        let arms = vec![Arm::Original, Arm::Strategy(StrategyId::Sfs)];
        let matrix = run_benchmark(&splits, scenarios, &arms, &settings, 2);
        assert_eq!(matrix.results.len(), 4);
        assert_eq!(matrix.results[0].len(), 2);
        for row in &matrix.results {
            for cell in row {
                assert!(cell.val_distance >= 0.0 || cell.val_distance.is_infinite());
            }
        }
    }
}
