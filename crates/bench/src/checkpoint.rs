//! Incremental checkpoint sidecar for matrix computation.
//!
//! Long corpus runs die — OOM kills, Ctrl-C, machine reboots. The runner
//! hands each completed scenario row to a sink ([`RunnerOptions::on_row`]);
//! [`Checkpoint`] persists those rows in a sidecar file next to the final
//! cache file so an interrupted run can resume, recomputing only the rows
//! that never finished. Every flush rewrites the sidecar atomically (temp
//! file + rename), so the file on disk is always a consistent snapshot of
//! the completed work.
//!
//! The sidecar is keyed by the corpus fingerprint and the matrix shape; a
//! mismatched or corrupt sidecar is quarantined (like a corrupt cache) and
//! contributes nothing, so stale rows from a different configuration can
//! never leak into a resumed matrix.
//!
//! [`RunnerOptions::on_row`]: dfs_core::runner::RunnerOptions

use crate::cache;
use dfs_core::error::DfsError;
use dfs_core::runner::CellResult;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

// Tracks the cell-line codec version in `cache` (v6 added the chunked-
// evaluator block counter; v5 the memo/bound-pruning/warm-start perf
// counters), so a sidecar written by an older build is a header mismatch,
// never a misparsed row.
const HEADER_TAG: &str = "#dfs-checkpoint";
const VERSION: &str = "v6";

/// A partially computed matrix being persisted row by row.
///
/// Thread-safe: [`Checkpoint::append_row`] may be called concurrently from
/// runner workers; flushes are serialized behind a mutex.
pub struct Checkpoint {
    path: PathBuf,
    buf: Mutex<String>,
}

impl Checkpoint {
    /// Sidecar location for a cache file (`<cache>.ckpt`).
    pub fn sidecar_path(cache_path: &Path) -> PathBuf {
        PathBuf::from(format!("{}.ckpt", cache_path.display()))
    }

    fn header(fingerprint: u64, n_scenarios: usize, n_arms: usize) -> String {
        format!("{HEADER_TAG}\t{VERSION}\t{fingerprint:016x}\t{n_scenarios}\t{n_arms}\n")
    }

    /// Parses the rows a previous interrupted run checkpointed.
    ///
    /// Missing sidecar → empty map. A sidecar whose header does not match
    /// this exact (fingerprint, shape) — or that is corrupt from the first
    /// line — is quarantined and yields nothing. A malformed *trailing*
    /// block (e.g. another writer died mid-rename) drops only the blocks
    /// from the damage onward; every complete leading block is kept.
    pub fn load_rows(
        path: &Path,
        fingerprint: u64,
        n_scenarios: usize,
        n_arms: usize,
    ) -> HashMap<usize, Vec<CellResult>> {
        let Ok(s) = std::fs::read_to_string(path) else {
            return HashMap::new();
        };
        let expected = Self::header(fingerprint, n_scenarios, n_arms);
        let mut lines = s.lines();
        if lines.next() != Some(expected.trim_end()) {
            let err = DfsError::CacheCorrupt {
                path: path.to_path_buf(),
                reason: "checkpoint header/fingerprint mismatch".into(),
            };
            dfs_obs::warn!("dfs-bench", "{err}; quarantining and starting fresh");
            dfs_obs::counter("checkpoint.quarantined", 1);
            cache::quarantine(path);
            return HashMap::new();
        }
        let mut rows = HashMap::new();
        let mut current: Option<(usize, Vec<CellResult>)> = None;
        let commit = |cur: &mut Option<(usize, Vec<CellResult>)>,
                      rows: &mut HashMap<usize, Vec<CellResult>>| {
            if let Some((i, row)) = cur.take() {
                if i < n_scenarios && row.len() == n_arms {
                    rows.insert(i, row);
                }
            }
        };
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            let ok = match fields.as_slice() {
                ["C", idx] => match idx.parse::<usize>() {
                    Ok(i) => {
                        commit(&mut current, &mut rows);
                        current = Some((i, Vec::with_capacity(n_arms)));
                        true
                    }
                    Err(_) => false,
                },
                ["R", ..] => match (current.as_mut(), cache::decode_cell(&fields)) {
                    (Some((_, row)), Ok(cell)) => {
                        row.push(cell);
                        true
                    }
                    _ => false,
                },
                _ => false,
            };
            if !ok {
                dfs_obs::warn!(
                    "dfs-bench",
                    "checkpoint {} damaged at '{line}'; keeping the {} complete rows before it",
                    path.display(),
                    rows.len()
                );
                dfs_obs::counter("checkpoint.damaged_tail", 1);
                current = None;
                break;
            }
        }
        commit(&mut current, &mut rows);
        rows
    }

    /// Opens a sidecar seeded with the header and any already-known rows
    /// (the rows just loaded for resume), and flushes that initial state.
    pub fn start(
        path: PathBuf,
        fingerprint: u64,
        n_scenarios: usize,
        n_arms: usize,
        seed_rows: &HashMap<usize, Vec<CellResult>>,
    ) -> Checkpoint {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut buf = Self::header(fingerprint, n_scenarios, n_arms);
        let mut idxs: Vec<usize> = seed_rows.keys().copied().collect();
        idxs.sort_unstable();
        for i in idxs {
            let _ = writeln!(buf, "C\t{i}");
            for cell in &seed_rows[&i] {
                cache::encode_cell(&mut buf, cell);
            }
        }
        let ckpt = Checkpoint { path, buf: Mutex::new(buf) };
        {
            let buf = ckpt.lock_buf();
            ckpt.flush(&buf);
        }
        ckpt
    }

    /// Records one completed row and flushes the sidecar atomically.
    ///
    /// IO failures degrade to a warning: checkpointing is best-effort and
    /// must never fault the computation it protects.
    pub fn append_row(&self, idx: usize, row: &[CellResult]) {
        let mut buf = self.lock_buf();
        let _ = writeln!(buf, "C\t{idx}");
        for cell in row {
            cache::encode_cell(&mut buf, cell);
        }
        self.flush(&buf);
    }

    /// Removes the sidecar — the final cache write supersedes it.
    pub fn finish(&self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn lock_buf(&self) -> MutexGuard<'_, String> {
        match self.buf.lock() {
            Ok(g) => g,
            // A panic while holding the lock leaves a consistent String
            // (appends happen before flush); recover and carry on.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn flush(&self, contents: &str) {
        let tmp = self.path.with_extension("ckpt.tmp");
        let write = std::fs::write(&tmp, contents.as_bytes())
            .and_then(|_| std::fs::rename(&tmp, &self.path));
        if let Err(e) = write {
            let err = DfsError::Io { path: self.path.clone(), source: e };
            dfs_obs::warn!("dfs-bench", "checkpoint flush failed: {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_core::runner::CellStatus;
    use std::time::Duration;

    const FP: u64 = 0xfeed;

    fn row(tag: usize, n_arms: usize) -> Vec<CellResult> {
        (0..n_arms)
            .map(|a| CellResult {
                status: CellStatus::Ok,
                success: a % 2 == 0,
                elapsed: Duration::from_millis((tag * 10 + a) as u64),
                val_distance: 0.1 * tag as f64,
                test_distance: 0.2 * tag as f64,
                evaluations: tag + a,
                test_f1: 0.5,
                subset_size: a + 1,
                perf: dfs_core::EvalPerf {
                    model_fits: (tag + a) as u64,
                    ..dfs_core::EvalPerf::default()
                },
            })
            .collect()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dfs-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(format!("{}.quarantined", p.display())).ok();
        p
    }

    #[test]
    fn appended_rows_roundtrip_and_finish_removes_the_sidecar() {
        let path = temp_path("roundtrip.ckpt");
        let ckpt = Checkpoint::start(path.clone(), FP, 4, 3, &HashMap::new());
        ckpt.append_row(0, &row(0, 3));
        ckpt.append_row(2, &row(2, 3));
        let rows = Checkpoint::load_rows(&path, FP, 4, 3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[&2][1].evaluations, 3);
        assert_eq!(rows[&0][0].subset_size, 1);
        assert!(!rows.contains_key(&1));
        ckpt.finish();
        assert!(!path.exists());
        assert!(Checkpoint::load_rows(&path, FP, 4, 3).is_empty());
    }

    #[test]
    fn seeded_rows_survive_a_restart_of_the_sidecar() {
        let path = temp_path("seeded.ckpt");
        let ckpt = Checkpoint::start(path.clone(), FP, 4, 2, &HashMap::new());
        ckpt.append_row(1, &row(1, 2));
        drop(ckpt);
        // Second run: resume rows seed the new sidecar before any append.
        let resumed = Checkpoint::load_rows(&path, FP, 4, 2);
        assert_eq!(resumed.len(), 1);
        let ckpt = Checkpoint::start(path.clone(), FP, 4, 2, &resumed);
        drop(ckpt);
        let again = Checkpoint::load_rows(&path, FP, 4, 2);
        assert!(again.contains_key(&1), "seeded row lost on restart");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_fingerprint_or_shape_is_quarantined() {
        let path = temp_path("mismatch.ckpt");
        let ckpt = Checkpoint::start(path.clone(), FP, 4, 2, &HashMap::new());
        ckpt.append_row(0, &row(0, 2));
        // Different fingerprint (a different corpus config) must not resume.
        assert!(Checkpoint::load_rows(&path, FP + 1, 4, 2).is_empty());
        assert!(!path.exists(), "mismatched sidecar must be moved aside");
        let q = PathBuf::from(format!("{}.quarantined", path.display()));
        assert!(q.exists());
        std::fs::remove_file(&q).ok();
    }

    #[test]
    fn damaged_tail_keeps_complete_leading_blocks() {
        let path = temp_path("tail.ckpt");
        let ckpt = Checkpoint::start(path.clone(), FP, 4, 2, &HashMap::new());
        ckpt.append_row(0, &row(0, 2));
        ckpt.append_row(1, &row(1, 2));
        // Truncate the file mid-way through the final row block.
        let contents = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &contents[..contents.len() - 20]).expect("write");
        let rows = Checkpoint::load_rows(&path, FP, 4, 2);
        assert!(rows.contains_key(&0), "complete leading block dropped");
        assert!(!rows.contains_key(&1), "truncated block must not resume");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_row_indices_are_ignored() {
        let path = temp_path("range.ckpt");
        let ckpt = Checkpoint::start(path.clone(), FP, 2, 2, &HashMap::new());
        ckpt.append_row(7, &row(7, 2)); // beyond n_scenarios
        let rows = Checkpoint::load_rows(&path, FP, 2, 2);
        assert!(rows.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
