//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each paper artifact has a `harness = false` bench target under
//! `benches/` that prints the same rows/series the paper reports (see the
//! per-experiment index in `DESIGN.md` and the measured results in
//! `EXPERIMENTS.md`). The expensive part — executing the randomized
//! scenario corpus across all 17 arms — runs once and is cached on disk
//! ([`cache`]), so `table3` pays the cost and the other tables reuse it.
//! While it runs, completed rows stream to a checkpoint sidecar
//! ([`checkpoint`]) so an interrupted computation resumes instead of
//! restarting; corrupt caches are quarantined, not trusted.
//!
//! Scale note: the paper burned four weeks of compute on 28-core machines
//! with 10 s–3 h search budgets. This harness scales the datasets and the
//! budgets down together (coverage is defined *relative to* the budget), so
//! the relative strategy behaviour — who covers what, who is fastest, where
//! backward selection dies — is preserved at laptop scale. Set
//! `DFS_BENCH_SCENARIOS` (default 8) to change scenarios-per-dataset.

pub mod cache;
pub mod checkpoint;
pub mod corpus;
pub mod stamp;
pub mod table;

pub use checkpoint::Checkpoint;
pub use corpus::{bench_settings, build_scenarios, build_splits, BenchVersion, CorpusConfig};
pub use table::{fmt_mean_std, print_table};

/// Unwraps a pipeline result in a bench main: prints the structured error
/// and exits nonzero instead of panicking with a backtrace.
pub fn ok_or_exit<T>(result: dfs_core::DfsResult<T>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[dfs-bench] fatal: {e}");
            std::process::exit(1);
        }
    }
}
