//! Thread-scaling benchmark for the nested-parallel execution layer.
//!
//! Two measurements at thread budgets 1/2/4/8:
//!
//! 1. **Executor map**: `Executor::par_map_indexed` over fixed-cost CPU
//!    items — the raw scaling ceiling of the permit pool, free of any
//!    benchmark-harness noise.
//! 2. **Benchmark matrix**: the same multi-arm scenario matrix through
//!    `run_benchmark_opts` with `threads = inner_threads = N`, verifying
//!    along the way that every budget produces bit-identical cells (the
//!    determinism contract of DESIGN.md § 4d).
//!
//! Results are printed as JSON and, when a path argument is given, also
//! written there (committed snapshot: `BENCH_parallel.json` in the repo
//! root). The JSON records `host_cpus`: speedups are physically bounded by
//! the cores of the machine that ran the benchmark — regenerate the
//! snapshot on multi-core hardware to see the scaling curve.
//!
//! Run offline with `scripts/offline-check.sh run --release -p dfs-bench
//! --bin bench_parallel -- BENCH_parallel.json`.

use dfs_bench::ok_or_exit;
use dfs_constraints::ConstraintSet;
use dfs_core::prelude::Executor;
use dfs_core::runner::{run_benchmark_opts, Arm, BenchmarkMatrix, RunnerOptions};
use dfs_core::{DfsError, MlScenario, ScenarioSettings};
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, spec_by_name};
use dfs_data::Split;
use dfs_fs::StrategyId;
use dfs_models::ModelKind;
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BUDGETS: [usize; 4] = [1, 2, 4, 8];

/// Median wall-clock over `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Fixed-cost CPU work per item: a splitmix-style integer mix, long enough
/// that spawning/permit overhead is a rounding error at any budget.
fn burn(seed: u64, iters: u32) -> u64 {
    let mut z = seed;
    for _ in 0..iters {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= x ^ (x >> 31);
    }
    z
}

fn bench_executor_map() -> Vec<(usize, u64)> {
    let items: Vec<u64> = (0..64u64).collect();
    let iters = 200_000u32;
    BUDGETS
        .into_iter()
        .map(|threads| {
            let exec = Executor::new(threads);
            let mut sink = 0u64;
            let ns = median_ns(5, || {
                let out = exec.par_map_indexed(&items, |_, &s| burn(s, iters));
                sink ^= out.iter().fold(0, |a, b| a ^ b);
            });
            assert!(sink != 1, "keep the work observable");
            (threads, ns)
        })
        .collect()
}

fn matrix_corpus() -> (HashMap<String, Split>, Vec<MlScenario>, Vec<Arm>) {
    let Some(spec) = spec_by_name("german_credit") else {
        ok_or_exit::<()>(Err(DfsError::UnknownDataset { dataset: "german_credit".into() }));
        unreachable!("ok_or_exit exits on Err");
    };
    let ds = generate(&spec, 29);
    let mut splits = HashMap::new();
    splits.insert("german_credit".to_string(), stratified_three_way(&ds, 29));
    let generous = Duration::from_secs(120);
    let mut with_safety = ConstraintSet::accuracy_only(0.55, generous);
    with_safety.min_safety = Some(0.2);
    let scenarios = vec![
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::DecisionTree,
            hpo: true,
            constraints: ConstraintSet::accuracy_only(0.55, generous),
            utility_f1: false,
            seed: 51,
        },
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::LogisticRegression,
            hpo: false,
            constraints: with_safety,
            utility_f1: false,
            seed: 52,
        },
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::GaussianNb,
            hpo: false,
            constraints: ConstraintSet::accuracy_only(0.60, generous),
            utility_f1: false,
            seed: 53,
        },
    ];
    let arms = vec![
        Arm::Original,
        Arm::Strategy(StrategyId::Sfs),
        Arm::Strategy(StrategyId::Nsga2Nr),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Chi2)),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::ReliefF)),
    ];
    (splits, scenarios, arms)
}

fn cells_match(a: &BenchmarkMatrix, b: &BenchmarkMatrix) -> bool {
    a.results.iter().flatten().zip(b.results.iter().flatten()).all(|(s, p)| {
        s.status == p.status
            && s.success == p.success
            && s.evaluations == p.evaluations
            && s.subset_size == p.subset_size
            && s.val_distance.to_bits() == p.val_distance.to_bits()
            && s.test_distance.to_bits() == p.test_distance.to_bits()
            && s.test_f1.to_bits() == p.test_f1.to_bits()
            && s.perf.without_timings() == p.perf.without_timings()
    })
}

fn bench_matrix() -> (Vec<(usize, u64)>, bool) {
    let (splits, scenarios, arms) = matrix_corpus();
    let mut settings = ScenarioSettings::fast();
    settings.max_evals = 24; // eval-capped: the wall clock never binds
    let run = |threads: usize| {
        let opts = RunnerOptions {
            threads,
            inner_threads: threads,
            ..RunnerOptions::default()
        };
        run_benchmark_opts(&splits, scenarios.clone(), &arms, &settings, &opts)
    };

    let baseline = run(1);
    let mut bit_identical = true;
    let timings = BUDGETS
        .into_iter()
        .map(|threads| {
            let ns = median_ns(3, || {
                let m = run(threads);
                bit_identical &= cells_match(&baseline, &m);
            });
            (threads, ns)
        })
        .collect();
    (timings, bit_identical)
}

fn json_map(samples: &[(usize, u64)]) -> (String, String) {
    let base = samples.first().map(|&(_, ns)| ns).unwrap_or(1).max(1);
    let mut times = String::new();
    let mut speedups = String::new();
    for (i, &(threads, ns)) in samples.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(times, "{sep}\"{threads}\": {ns}");
        let _ = write!(speedups, "{sep}\"{threads}\": {:.2}", base as f64 / ns.max(1) as f64);
    }
    (times, speedups)
}

fn main() {
    let stamp = dfs_bench::stamp::stamp_json_fields();
    let map = bench_executor_map();
    let (matrix, bit_identical) = bench_matrix();

    let (map_ns, map_speedup) = json_map(&map);
    let (mat_ns, mat_speedup) = json_map(&matrix);
    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "bench": "parallel_executor",
  {stamp},
  "note": "speedups are bounded by host_cpus; regenerate on multi-core hardware for the scaling curve",
  "executor_map": {{
    "items": 64,
    "burn_iters_per_item": 200000,
    "median_ns_by_threads": {{{map_ns}}},
    "speedup_vs_1_thread": {{{map_speedup}}}
  }},
  "benchmark_matrix": {{
    "scenarios": 3,
    "arms": 5,
    "median_ns_by_threads": {{{mat_ns}}},
    "speedup_vs_1_thread": {{{mat_speedup}}},
    "bit_identical_across_budgets": {bit_identical}
  }}
}}
"#,
    );

    print!("{json}");
    if !bit_identical {
        eprintln!("[dfs-bench] fatal: thread budgets disagreed; determinism contract violated");
        std::process::exit(1);
    }
    if let Some(path) = std::env::args().nth(1) {
        ok_or_exit(
            std::fs::write(&path, &json)
                .map_err(|source| DfsError::Io { path: PathBuf::from(&path), source }),
        );
        eprintln!("wrote {path}");
    }
}
