//! Before/after benchmark for the cross-arm subset-evaluation memo and the
//! cheap-first bound pruning (DESIGN.md § 4h).
//!
//! Runs the same multi-arm benchmark matrix twice at a fixed thread budget:
//!
//! - **naive** — no shared memo, bound pruning off: every arm re-measures
//!   every subset it proposes, exactly as the engine worked before the
//!   memo landed;
//! - **optimized** — the production configuration: one [`EvalMemo`] shared
//!   across all cells, plus the lower-bound short-circuit inside the
//!   sequential strategies.
//!
//! The arm set leans on the heavy overlap the memo exploits: SFS and SFFS
//! walk identical prefixes, SBS/SBFS walk identical drop paths from the
//! full set the Original arm also measures, and two scenarios differing
//! only in their F1 threshold share every measurement (thresholds are
//! excluded from the memo key). One scenario carries a Min Safety
//! constraint so the bound short-circuit has an expensive attack stage to
//! skip.
//!
//! Every cell of the two matrices is asserted bit-identical — statuses,
//! evaluation counts, subset sizes, distance/F1 bit patterns — and the
//! acceptance bar is a ≥ 2x reduction in total model fits. The process
//! exits nonzero when either fails, in `--smoke` mode too.
//!
//! Results are printed as JSON and, when a path argument is given, also
//! written there (committed snapshot: `BENCH_memo.json` in the repo root).
//!
//! Run offline with `scripts/offline-check.sh run --release -p dfs-bench
//! --bin bench_memo -- BENCH_memo.json`.

use dfs_bench::ok_or_exit;
use dfs_constraints::ConstraintSet;
use dfs_core::runner::{run_benchmark_opts, Arm, BenchmarkMatrix, RunnerOptions};
use dfs_core::{DfsError, MlScenario, ScenarioSettings};
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, tiny_spec};
use dfs_data::Split;
use dfs_fs::StrategyId;
use dfs_models::ModelKind;
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn splits() -> HashMap<String, Split> {
    let ds = generate(&tiny_spec(), 23);
    let mut splits = HashMap::new();
    splits.insert("tiny".to_string(), stratified_three_way(&ds, 23));
    splits
}

/// Nine scenarios built around threshold-only variation — the shape of
/// the paper's constraint-grid benchmarks, and the memo's best case since
/// thresholds are excluded from the memo key: four DT rows differing only
/// in the F1 threshold share every measurement, as do four LR rows
/// differing only in the safety threshold (and carrying an attack stage
/// for the bound short-circuit to skip). The HPO row makes each fit a
/// seven-point grid, so its within-row cross-arm hits save the most work.
fn scenarios() -> Vec<MlScenario> {
    let generous = Duration::from_secs(120);
    let dt = |min_f1: f64| MlScenario {
        dataset: "tiny".into(),
        model: ModelKind::DecisionTree,
        hpo: false,
        constraints: ConstraintSet::accuracy_only(min_f1, generous),
        utility_f1: false,
        seed: 41,
    };
    let lr = |min_safety: f64| {
        // The unreachable F1 bar keeps every candidate short of it, so the
        // round incumbent stays positive and the cheap F1 shortfall alone
        // can prove a candidate worse — the bound short-circuit then skips
        // its evasion attack.
        let mut c = ConstraintSet::accuracy_only(0.9, generous);
        c.min_safety = Some(min_safety);
        MlScenario {
            dataset: "tiny".into(),
            model: ModelKind::LogisticRegression,
            hpo: false,
            constraints: c,
            utility_f1: false,
            seed: 42,
        }
    };
    vec![
        dt(0.5),
        dt(0.55),
        dt(0.6),
        dt(0.7),
        lr(0.2),
        lr(0.25),
        lr(0.3),
        lr(0.35),
        MlScenario {
            dataset: "tiny".into(),
            model: ModelKind::DecisionTree,
            hpo: true,
            constraints: ConstraintSet::accuracy_only(0.55, generous),
            utility_f1: false,
            seed: 43,
        },
    ]
}

fn arms() -> Vec<Arm> {
    vec![
        Arm::Original,
        Arm::Strategy(StrategyId::Sfs),
        Arm::Strategy(StrategyId::Sffs),
        Arm::Strategy(StrategyId::Sbs),
        Arm::Strategy(StrategyId::Sbfs),
        Arm::Strategy(StrategyId::Nsga2Nr),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Chi2)),
    ]
}

fn run(max_evals: usize, optimized: bool) -> (BenchmarkMatrix, u64) {
    let mut settings = ScenarioSettings::fast();
    settings.max_evals = max_evals; // the eval cap binds, never the wall clock
    settings.bound_pruning = optimized;
    let opts = RunnerOptions {
        threads: 1,
        inner_threads: 1,
        share_eval_memo: optimized,
        ..RunnerOptions::default()
    };
    let started = Instant::now();
    let matrix = run_benchmark_opts(&splits(), scenarios(), &arms(), &settings, &opts);
    (matrix, started.elapsed().as_millis() as u64)
}

/// Observable-level bit-identity between two matrices: everything except
/// the clock-derived timings and the work counters the memo changes by
/// design.
fn matrices_identical(a: &BenchmarkMatrix, b: &BenchmarkMatrix) -> bool {
    a.arms == b.arms
        && a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(ca, cb)| {
                    ca.status == cb.status
                        && ca.success == cb.success
                        && ca.evaluations == cb.evaluations
                        && ca.subset_size == cb.subset_size
                        && ca.val_distance.to_bits() == cb.val_distance.to_bits()
                        && ca.test_distance.to_bits() == cb.test_distance.to_bits()
                        && ca.test_f1.to_bits() == cb.test_f1.to_bits()
                })
        })
}

fn main() {
    let stamp = dfs_bench::stamp::stamp_json_fields();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(arg);
        }
    }
    let max_evals = if smoke { 16 } else { 24 };

    let (naive, naive_ms) = run(max_evals, false);
    let (optimized, optimized_ms) = run(max_evals, true);
    let bit_identical = matrices_identical(&naive, &optimized);

    let np = naive.total_perf();
    let op = optimized.total_perf();
    let fit_reduction = np.model_fits as f64 / op.model_fits.max(1) as f64;
    let wall_speedup = naive_ms as f64 / optimized_ms.max(1) as f64;
    let cells = naive.results.iter().map(|r| r.len()).sum::<usize>();
    let hit_rate = op.memo_hits as f64 / (op.memo_hits + op.memo_misses).max(1) as f64;

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "bench": "eval_memo",
  {stamp},
  "smoke": {smoke},
  "corpus": {{ "dataset": "tiny", "scenarios": {n_scenarios}, "arms": {n_arms}, "cells": {cells}, "max_evals": {max_evals} }},
  "naive": {{ "model_fits": {naive_fits}, "evaluations": {naive_evals}, "wall_ms": {naive_ms} }},
  "optimized": {{
    "model_fits": {opt_fits},
    "evaluations": {opt_evals},
    "wall_ms": {optimized_ms},
    "memo_hits": {memo_hits},
    "memo_misses": {memo_misses},
    "memo_hit_rate": {hit_rate:.3},
    "bound_skips": {bound_skips},
    "warm_starts": {warm_starts}
  }},
  "model_fit_reduction": {fit_reduction:.2},
  "wall_speedup": {wall_speedup:.2},
  "bit_identical_to_naive": {bit_identical}
}}
"#,
        n_scenarios = naive.scenarios.len(),
        n_arms = naive.arms.len(),
        naive_fits = np.model_fits,
        naive_evals = naive.results.iter().flatten().map(|c| c.evaluations as u64).sum::<u64>(),
        opt_fits = op.model_fits,
        opt_evals = optimized.results.iter().flatten().map(|c| c.evaluations as u64).sum::<u64>(),
        memo_hits = op.memo_hits,
        memo_misses = op.memo_misses,
        bound_skips = op.bound_skips,
        warm_starts = op.warm_starts,
    );

    print!("{json}");
    if !bit_identical {
        eprintln!("[dfs-bench] fatal: memoized matrix diverged from the naive matrix");
        std::process::exit(1);
    }
    if fit_reduction < 2.0 {
        eprintln!(
            "[dfs-bench] fatal: model-fit reduction {fit_reduction:.2}x below the 2x bar \
             ({} -> {} fits)",
            np.model_fits, op.model_fits
        );
        std::process::exit(1);
    }
    if let Some(path) = out_path {
        ok_or_exit(
            std::fs::write(&path, &json)
                .map_err(|source| DfsError::Io { path: PathBuf::from(&path), source }),
        );
        eprintln!("wrote {path}");
    }
}
