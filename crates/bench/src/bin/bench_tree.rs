//! Before/after benchmark for the CART tree kernels.
//!
//! Three measurements on a realistic corpus (the synthetic german_credit
//! dataset, train subsampled to the evaluation engine's row cap):
//!
//! 1. **Tree fit** at the deepest grid depth — a three-way comparison of
//!    the historical per-node gather-and-sort builder (carried here
//!    verbatim as the "naive" baseline), the presorted kernel
//!    (`SplitExactness::Presorted`), and the histogram-binned kernel
//!    (`SplitExactness::Binned256`, the default). The presorted tree is
//!    asserted bit-identical to the naive one on every node count,
//!    importance bit pattern, and per-row probability bit pattern; the
//!    binned tree — exact only up to 256 distinct values per column — is
//!    held to validation-F1 parity with the presorted tree within
//!    [`F1_TOLERANCE`]. In full (non-`--smoke`) runs with both kernels
//!    selected, the binned fit must beat the presorted fit by at least
//!    [`MIN_BINNED_SPEEDUP`]x or the process exits nonzero.
//! 2. **DT-HPO grid** — seven independent fits (the pre-truncation
//!    `grid_search` loop) vs one deep fit + six O(nodes) truncations, with
//!    the winning spec, its `val_f1` bits, and its predictions asserted
//!    equal. Both sides run the workspace-default (binned) kernel, so this
//!    isolates the truncation speedup from the kernel choice.
//! 3. **Forest fit / predict** — the class-balanced 50-tree forest through
//!    the pooled-workspace fused-gather path in each selected exactness
//!    mode, plus the per-row cost of the scratch-reusing batch predictor.
//!
//! 4. **Scale cell** — the streamed synthetic generator
//!    (`million_row_spec` shape, `--rows` rows, default 10^5 full / 10^4
//!    smoke) feeds a block-size-invariance gate plus a four-way depth-7
//!    race: presorted vs `Binned256` vs `Binned4096` vs `Binned4096` with
//!    GOSS per-node subsampling, all held to holdout-F1 parity within
//!    [`F1_TOLERANCE`] of presorted. Full runs gate the u16 kernel at
//!    [`MIN_WIDE_SPEEDUP`]x over presorted.
//! 5. **Million-row cell** (full runs only) — one timed `Binned4096`+GOSS
//!    fit at 10^6 streamed rows.
//!
//! `--exactness binned|binned4096|presorted|both` (default `both`) selects
//! which kernels are *timed*; the agreement assertions above run in every
//! mode. `--rows N` overrides the scale-cell row count. Results are
//! printed as JSON (unmeasured kernels appear as `null`) and, when a path
//! argument is given, also written there (committed snapshot:
//! `BENCH_tree.json` in the repo root). `--smoke` shrinks repetition
//! counts and relaxes the wall-clock speedup gate for CI; the agreement
//! assertions run in every mode and exit nonzero on violation.
//!
//! Run offline with `scripts/offline-check.sh run --release -p dfs-bench
//! --bin bench_tree -- BENCH_tree.json`.

use dfs_bench::ok_or_exit;
use dfs_core::DfsError;
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, generate_streamed_collect, million_row_spec, spec_by_name};
use dfs_linalg::Matrix;
use dfs_models::forest::{ForestConfig, RandomForest};
use dfs_models::tree::{BinSet, DecisionTree, GossConfig, Node, SplitExactness, TreeWorkspace};
use dfs_models::{hpo, CodeWidth, ModelKind, ModelSpec, TrainedModel};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Train-row cap, matching `ScenarioSettings::default_bench().max_train_rows`.
const TRAIN_ROWS: usize = 600;
/// Deepest depth of the paper's DT grid (`td ∈ [1:7]`).
const GRID_DEPTH: usize = 7;
/// Maximum allowed |val-F1(binned) − val-F1(presorted)| at `GRID_DEPTH`.
///
/// german_credit's scaled numeric columns exceed 256 distinct values at
/// 600 train rows, so the binned kernel quantizes them and its deeper
/// splits land on slightly different thresholds; the measured val-F1 delta
/// is 0.0228 (binned is the *higher* of the two here — quantization acts
/// as mild regularization, not degradation). The tolerance bounds the gap
/// at 0.03 so a real quality regression in either kernel still fails the
/// gate.
const F1_TOLERANCE: f64 = 0.03;
/// Full-run wall-clock gate: binned fit must beat presorted by this factor.
const MIN_BINNED_SPEEDUP: f64 = 2.0;
/// Full-run gate on the scale cell: the u16 wide-bin kernel (with GOSS)
/// must beat the presorted kernel by this factor at [`SCALE_ROWS_FULL`]
/// rows.
const MIN_WIDE_SPEEDUP: f64 = 2.0;
/// Scale-cell rows (full runs); `--rows` overrides, `--smoke` defaults to
/// [`SCALE_ROWS_SMOKE`].
const SCALE_ROWS_FULL: usize = 100_000;
const SCALE_ROWS_SMOKE: usize = 10_000;
/// The scale cell's GOSS shares: keep the top 10% of each node's rows by
/// gradient proxy and sample 10% of the remainder.
const GOSS_SHARES: (f64, f64) = (0.1, 0.1);

/// Median wall-clock over `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

// ---------------------------------------------------------------------------
// The "before" implementation: the per-node gather-and-sort CART builder
// exactly as it shipped before the presorted kernel, kept here as the
// benchmark baseline and bit-identity reference.
// ---------------------------------------------------------------------------

const MIN_SAMPLES_SPLIT: usize = 4;

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

struct NaiveSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

struct NaiveBuilder<'a> {
    x: &'a Matrix,
    y: &'a [bool],
    w: &'a [f64],
    nodes: Vec<Node>,
    importances: Vec<f64>,
    max_depth: usize,
}

fn naive_fit(x: &Matrix, y: &[bool], max_depth: usize) -> DecisionTree {
    let (n, d) = x.shape();
    assert_eq!(n, y.len());
    assert!(n > 0);
    let max_depth = max_depth.max(1);
    let w = vec![1.0; n];
    let mut b = NaiveBuilder {
        x,
        y,
        w: &w,
        nodes: Vec::new(),
        importances: vec![0.0; d],
        max_depth,
    };
    let all: Vec<usize> = (0..n).collect();
    b.build(&all, 0);
    let total: f64 = b.importances.iter().sum();
    if total > 0.0 {
        for imp in &mut b.importances {
            *imp /= total;
        }
    }
    DecisionTree::from_parts(b.nodes, b.importances, max_depth)
}

impl NaiveBuilder<'_> {
    fn build(&mut self, idx: &[usize], depth: usize) -> usize {
        let (w_pos, w_total) = self.weighted_counts(idx);
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        let node_gini = gini(w_pos, w_total);

        if depth >= self.max_depth
            || idx.len() < MIN_SAMPLES_SPLIT
            || node_gini <= dfs_linalg::EPS
        {
            return self.push(Node::Leaf { proba });
        }

        match self.best_split(idx, node_gini, w_pos, w_total) {
            None => self.push(Node::Leaf { proba }),
            Some(split) => {
                self.importances[split.feature] += split.gain * w_total;
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| self.x[(i, split.feature)] <= split.threshold);
                let me = self.push(Node::Leaf { proba });
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes[me] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn weighted_counts(&self, idx: &[usize]) -> (f64, f64) {
        let mut pos = 0.0;
        let mut total = 0.0;
        for &i in idx {
            total += self.w[i];
            if self.y[i] {
                pos += self.w[i];
            }
        }
        (pos, total)
    }

    fn best_split(
        &self,
        idx: &[usize],
        node_gini: f64,
        w_pos: f64,
        w_total: f64,
    ) -> Option<NaiveSplit> {
        let d = self.x.ncols();
        let mut best: Option<NaiveSplit> = None;
        let mut values: Vec<(f64, f64, bool)> = Vec::with_capacity(idx.len());
        for feature in 0..d {
            values.clear();
            values.extend(idx.iter().map(|&i| (self.x[(i, feature)], self.w[i], self.y[i])));
            // Features are finite by construction; equal-order fallback for
            // the impossible NaN keeps the runner path panic-free.
            values.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            if values.first().map(|v| v.0) == values.last().map(|v| v.0) {
                continue;
            }
            let len = values.len();
            let mut prefix_pos = vec![0.0; len + 1];
            let mut prefix_total = vec![0.0; len + 1];
            for (k, v) in values.iter().enumerate() {
                prefix_total[k + 1] = prefix_total[k] + v.1;
                prefix_pos[k + 1] = prefix_pos[k] + if v.2 { v.1 } else { 0.0 };
            }
            for k in (1..len).filter(|&k| values[k].0 > values[k - 1].0) {
                let threshold = 0.5 * (values[k - 1].0 + values[k].0);
                let left_total = prefix_total[k];
                let right_total = w_total - left_total;
                if left_total <= 0.0 || right_total <= 0.0 {
                    continue;
                }
                let left_pos = prefix_pos[k];
                let right_pos = w_pos - left_pos;
                let child = (left_total * gini(left_pos, left_total)
                    + right_total * gini(right_pos, right_total))
                    / w_total;
                let gain = (node_gini - child).max(0.0);
                if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                    best = Some(NaiveSplit { feature, threshold, gain });
                }
            }
        }
        best
    }
}

/// The pre-truncation DT grid: one full fit per grid point, folded with the
/// strictly-better-in-grid-order rule `grid_search` uses.
fn naive_dt_grid(
    x_train: &Matrix,
    y_train: &[bool],
    x_val: &Matrix,
    y_val: &[bool],
) -> (ModelSpec, f64, TrainedModel) {
    let mut best: Option<(f64, ModelSpec, TrainedModel)> = None;
    for spec in hpo::grid(ModelKind::DecisionTree) {
        let model = spec.fit(x_train, y_train);
        let f1 = dfs_metrics::f1_score(&model.predict(x_val), y_val);
        let better = best.as_ref().map(|(b, _, _)| f1 > *b).unwrap_or(true);
        if better {
            best = Some((f1, spec, model));
        }
    }
    let Some((f1, spec, model)) = best else {
        eprintln!("[dfs-bench] fatal: empty DT grid");
        std::process::exit(1);
    };
    (spec, f1, model)
}

// ---------------------------------------------------------------------------

fn corpus() -> (Matrix, Vec<bool>, Matrix, Vec<bool>) {
    let Some(spec) = spec_by_name("german_credit") else {
        eprintln!("[dfs-bench] fatal: unknown dataset german_credit");
        std::process::exit(1);
    };
    let ds = generate(&spec, 41);
    let split = stratified_three_way(&ds, 41);
    let cap = TRAIN_ROWS.min(split.train.x.nrows());
    let rows: Vec<usize> = (0..cap).collect();
    let x_train = split.train.x.select_rows(&rows);
    let y_train: Vec<bool> = rows.iter().map(|&i| split.train.y[i]).collect();
    (x_train, y_train, split.val.x.clone(), split.val.y.clone())
}

/// Observable-level bit-identity: node count, importance bits, and the
/// probability bits of every probe row.
fn assert_trees_identical(a: &DecisionTree, b: &DecisionTree, probes: &[&Matrix]) -> bool {
    if a.n_nodes() != b.n_nodes() || a.max_depth() != b.max_depth() {
        return false;
    }
    let same_importances = a
        .importances()
        .iter()
        .zip(b.importances())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    if !same_importances || a.importances().len() != b.importances().len() {
        return false;
    }
    probes.iter().all(|m| {
        m.rows_iter().all(|row| a.proba_one(row).to_bits() == b.proba_one(row).to_bits())
    })
}

fn tree_val_f1(t: &DecisionTree, x_val: &Matrix, y_val: &[bool]) -> f64 {
    let preds: Vec<bool> = x_val.rows_iter().map(|row| t.predict_one(row)).collect();
    dfs_metrics::f1_score(&preds, y_val)
}

/// `null`-aware JSON formatting for kernels that were not timed.
fn ns_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn ratio_json(num: Option<u64>, den: Option<u64>) -> String {
    match (num, den) {
        (Some(a), Some(b)) => format!("{:.2}", a as f64 / b.max(1) as f64),
        _ => "null".to_string(),
    }
}

fn main() {
    let stamp = dfs_bench::stamp::stamp_json_fields();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut exactness_arg = String::from("both");
    let mut rows_arg: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    let parse_rows = |v: &str| -> usize {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("[dfs-bench] fatal: --rows expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--exactness" {
            match args.next() {
                Some(v) => exactness_arg = v,
                None => {
                    eprintln!("[dfs-bench] fatal: --exactness requires a value");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--exactness=") {
            exactness_arg = v.to_string();
        } else if arg == "--rows" {
            match args.next() {
                Some(v) => rows_arg = Some(parse_rows(&v)),
                None => {
                    eprintln!("[dfs-bench] fatal: --rows requires a value");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--rows=") {
            rows_arg = Some(parse_rows(v));
        } else {
            out_path = Some(arg);
        }
    }
    let (run_binned, run_presorted) = match exactness_arg.as_str() {
        "both" => (true, true),
        other => match SplitExactness::parse(other) {
            Some(SplitExactness::Binned256) | Some(SplitExactness::Binned4096) => (true, false),
            Some(SplitExactness::Presorted) => (false, true),
            None => {
                eprintln!(
                    "[dfs-bench] fatal: unknown --exactness `{other}` \
                     (expected binned, binned4096, presorted, or both)"
                );
                std::process::exit(2);
            }
        },
    };
    let scale_rows =
        rows_arg.unwrap_or(if smoke { SCALE_ROWS_SMOKE } else { SCALE_ROWS_FULL });
    let reps = if smoke { 3 } else { 9 };
    let forest_reps = if smoke { 1 } else { 5 };

    let (x_train, y_train, x_val, y_val) = corpus();
    let (n, d) = x_train.shape();
    let probes: [&Matrix; 2] = [&x_train, &x_val];
    let mut gate_ok = true;

    // 1. Single deep tree fit: naive per-node sort vs presorted vs binned.
    //    The agreement checks fit each kernel once regardless of which
    //    modes are being timed.
    let naive_tree = naive_fit(&x_train, &y_train, GRID_DEPTH);
    let mut ws_presorted = TreeWorkspace::with_exactness(SplitExactness::Presorted);
    let presorted_tree =
        DecisionTree::fit_in(&x_train, &y_train, GRID_DEPTH, None, &mut ws_presorted);
    let presorted_exact = assert_trees_identical(&naive_tree, &presorted_tree, &probes);
    if !presorted_exact {
        eprintln!("[dfs-bench] fatal: presorted kernel diverged from the naive builder");
    }
    // The binned workspace runs with pre-derived bins bound, mirroring the
    // evaluation engine: `BinSet::derive` happens once per (dataset, split)
    // on the `ArtifactCache` and every fit reuses it, so per-fit binned
    // cost excludes the one-off column sorts.
    let bins = std::sync::Arc::new(BinSet::derive(&x_train));
    let all_cols: Vec<usize> = (0..d).collect();
    let all_rows: Vec<usize> = (0..n).collect();
    let mut ws_binned = TreeWorkspace::with_exactness(SplitExactness::Binned256);
    ws_binned.bind_bins(&bins, &all_cols, &all_rows);
    let binned_tree = DecisionTree::fit_in(&x_train, &y_train, GRID_DEPTH, None, &mut ws_binned);
    let f1_presorted = tree_val_f1(&presorted_tree, &x_val, &y_val);
    let f1_binned = tree_val_f1(&binned_tree, &x_val, &y_val);
    let f1_delta = (f1_binned - f1_presorted).abs();
    let f1_ok = f1_delta <= F1_TOLERANCE;
    if !f1_ok {
        eprintln!(
            "[dfs-bench] fatal: binned/presorted val-F1 delta {f1_delta:.4} \
             exceeds tolerance {F1_TOLERANCE}"
        );
    }
    gate_ok &= presorted_exact && f1_ok;

    let fit_naive_ns = median_ns(reps, || {
        let t = naive_fit(&x_train, &y_train, GRID_DEPTH);
        assert!(t.n_nodes() > 0);
    });
    let fit_presorted_ns = run_presorted.then(|| {
        median_ns(reps, || {
            let t =
                DecisionTree::fit_in(&x_train, &y_train, GRID_DEPTH, None, &mut ws_presorted);
            assert!(t.n_nodes() > 0);
        })
    });
    let fit_binned_ns = run_binned.then(|| {
        median_ns(reps, || {
            let t = DecisionTree::fit_in(&x_train, &y_train, GRID_DEPTH, None, &mut ws_binned);
            assert!(t.n_nodes() > 0);
        })
    });
    let binned_vs_presorted = match (fit_presorted_ns, fit_binned_ns) {
        (Some(p), Some(b)) => Some(p as f64 / b.max(1) as f64),
        _ => None,
    };
    if !smoke {
        if let Some(speedup) = binned_vs_presorted {
            if speedup < MIN_BINNED_SPEEDUP {
                eprintln!(
                    "[dfs-bench] fatal: binned kernel speedup {speedup:.2}x over presorted \
                     is below the {MIN_BINNED_SPEEDUP}x gate"
                );
                gate_ok = false;
            }
        }
    }

    // 2. DT-HPO grid: 7 independent fits vs 1 deep fit + 6 truncations.
    //    Both sides use the workspace-default kernel, so this isolates the
    //    truncation speedup from the kernel choice.
    let (naive_spec, naive_f1, naive_model) = naive_dt_grid(&x_train, &y_train, &x_val, &y_val);
    let fast = hpo::grid_search(ModelKind::DecisionTree, &x_train, &y_train, &x_val, &y_val);
    let grid_identical = fast.spec == naive_spec
        && fast.val_f1.to_bits() == naive_f1.to_bits()
        && fast.evaluations == hpo::grid(ModelKind::DecisionTree).len()
        && fast.model.predict(&x_val) == naive_model.predict(&x_val)
        && fast.model.predict(&x_train) == naive_model.predict(&x_train);
    if !grid_identical {
        eprintln!("[dfs-bench] fatal: truncated DT grid diverged from independent fits");
    }
    gate_ok &= grid_identical;
    let grid_naive_ns = median_ns(reps, || {
        let (_, f1, _) = naive_dt_grid(&x_train, &y_train, &x_val, &y_val);
        assert!(f1.is_finite());
    });
    let grid_fast_ns = median_ns(reps, || {
        let r = hpo::grid_search(ModelKind::DecisionTree, &x_train, &y_train, &x_val, &y_val);
        assert!(r.val_f1.is_finite());
    });

    // 3. Forest fit + batch predict through the pooled-workspace path, once
    //    per selected exactness mode.
    let forest_time = |exactness: SplitExactness| {
        let cfg = ForestConfig { exactness, ..ForestConfig::default() };
        median_ns(forest_reps, || {
            let f = RandomForest::fit(&x_train, &y_train, &cfg);
            assert_eq!(f.n_trees(), cfg.n_trees);
        })
    };
    let forest_binned_ns = run_binned.then(|| forest_time(SplitExactness::Binned256));
    let forest_presorted_ns = run_presorted.then(|| forest_time(SplitExactness::Presorted));
    let cfg = ForestConfig::default();
    let forest = RandomForest::fit(&x_train, &y_train, &cfg);
    let predict_rows = x_val.nrows().max(1);
    let forest_predict_ns = median_ns(reps, || {
        let preds = forest.predict(&x_val);
        assert_eq!(preds.len(), predict_rows);
    });

    // 4. Scale cell: the streamed generator feeds a wide synthetic corpus
    //    (million_row_spec shape at `--rows`), and the u16 wide-bin kernel
    //    — with and without GOSS per-node subsampling — is raced against
    //    the u8 and presorted kernels. 80% of the rows train, the last 20%
    //    are the F1 holdout (scored row-by-row, never gathered).
    let mut scale_spec = million_row_spec();
    scale_spec.rows = scale_rows;
    let scale_seed = 77;
    let scale = generate_streamed_collect(&scale_spec, scale_seed, 8192);
    // Block-size invariance gate: regenerating with a misaligned block
    // size must reproduce the corpus bit-for-bit.
    let streamed_identical = {
        let alt = generate_streamed_collect(&scale_spec, scale_seed, 999);
        alt.x == scale.x && alt.y == scale.y
    };
    if !streamed_identical {
        eprintln!("[dfs-bench] fatal: streamed generation is not block-size invariant");
    }
    gate_ok &= streamed_identical;
    let scale_d = scale.x.ncols();
    let scale_train = (scale.x.nrows() * 4) / 5;
    let scale_cols: Vec<usize> = (0..scale_d).collect();
    let scale_train_rows: Vec<usize> = (0..scale_train).collect();
    let mut x_scale = Matrix::zeros(0, 0);
    scale.x.select_row_range_cols_into(0..scale_train, &scale_cols, &mut x_scale);
    let y_scale = &scale.y[..scale_train];
    let holdout_f1 = |t: &DecisionTree| {
        let preds: Vec<bool> = scale
            .x
            .rows_iter()
            .skip(scale_train)
            .map(|row| t.predict_one(row))
            .collect();
        dfs_metrics::f1_score(&preds, &scale.y[scale_train..])
    };
    let scale_reps = if smoke { 1 } else { 3 };
    let goss_cfg = GossConfig::new(GOSS_SHARES.0, GOSS_SHARES.1, 42);
    let scale_fit = |exactness: SplitExactness, goss: Option<GossConfig>| {
        let mut ws = TreeWorkspace::with_exactness(exactness);
        if let Some(width) = exactness.code_width() {
            let bins = std::sync::Arc::new(BinSet::derive_with(&x_scale, width));
            ws.bind_bins(&bins, &scale_cols, &scale_train_rows);
        }
        ws.set_goss(goss);
        let tree = DecisionTree::fit_in(&x_scale, y_scale, GRID_DEPTH, None, &mut ws);
        let ns = median_ns(scale_reps, || {
            let t = DecisionTree::fit_in(&x_scale, y_scale, GRID_DEPTH, None, &mut ws);
            assert!(t.n_nodes() > 0);
        });
        (ns, holdout_f1(&tree))
    };
    let (scale_presorted_ns, scale_presorted_f1) = scale_fit(SplitExactness::Presorted, None);
    let (scale_u8_ns, scale_u8_f1) = scale_fit(SplitExactness::Binned256, None);
    let (scale_u16_ns, scale_u16_f1) = scale_fit(SplitExactness::Binned4096, None);
    let (scale_goss_ns, scale_goss_f1) = scale_fit(SplitExactness::Binned4096, Some(goss_cfg));
    // Quality gate: the exact binned kernels must hold F1 parity with the
    // presorted reference on the holdout at any row count. The GOSS cell
    // is stochastic — at smoke-sized corpora a 20% subsample is noise-
    // dominated — so its parity is only gated at full scale.
    let mut parity = vec![scale_u8_f1, scale_u16_f1];
    if !smoke {
        parity.push(scale_goss_f1);
    }
    let scale_f1_ok =
        parity.iter().all(|f1| (f1 - scale_presorted_f1).abs() <= F1_TOLERANCE);
    if !scale_f1_ok {
        eprintln!(
            "[dfs-bench] fatal: scale-cell F1 parity broken (presorted {scale_presorted_f1:.4}, \
             u8 {scale_u8_f1:.4}, u16 {scale_u16_f1:.4}, u16+GOSS {scale_goss_f1:.4})"
        );
    }
    gate_ok &= scale_f1_ok;
    let wide_vs_presorted = scale_presorted_ns as f64 / scale_u16_ns.max(1) as f64;
    let goss_vs_u8 = scale_u8_ns as f64 / scale_goss_ns.max(1) as f64;
    let goss_vs_u16 = scale_u16_ns as f64 / scale_goss_ns.max(1) as f64;
    if !smoke && wide_vs_presorted < MIN_WIDE_SPEEDUP {
        eprintln!(
            "[dfs-bench] fatal: wide-bin kernel speedup {wide_vs_presorted:.2}x over presorted \
             at {scale_rows} rows is below the {MIN_WIDE_SPEEDUP}x gate"
        );
        gate_ok = false;
    }

    // 5. Million-row watchdog cell (full runs only): one u16+GOSS fit at
    //    10^6 streamed rows, timed once — proof the kernel holds at the
    //    paper-motivating scale, not a median.
    let million_ns: Option<u64> = (!smoke).then(|| {
        let spec = million_row_spec();
        let m = generate_streamed_collect(&spec, scale_seed, 8192);
        let d = m.x.ncols();
        let cols: Vec<usize> = (0..d).collect();
        let rows_all: Vec<usize> = (0..m.x.nrows()).collect();
        let mut ws = TreeWorkspace::with_exactness(SplitExactness::Binned4096);
        let bins = std::sync::Arc::new(BinSet::derive_with(&m.x, CodeWidth::U16));
        ws.bind_bins(&bins, &cols, &rows_all);
        ws.set_goss(Some(goss_cfg));
        let t = Instant::now();
        let tree = DecisionTree::fit_in(&m.x, &m.y, GRID_DEPTH, None, &mut ws);
        let ns = t.elapsed().as_nanos() as u64;
        assert!(tree.n_nodes() > 0);
        ns
    });

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "bench": "tree_kernel",
  {stamp},
  "smoke": {smoke},
  "exactness": "{exactness_arg}",
  "corpus": {{ "dataset": "german_credit", "train_rows": {n}, "features": {d} }},
  "tree_fit": {{
    "max_depth": {GRID_DEPTH},
    "naive_ns": {fit_naive_ns},
    "presorted_ns": {presorted_ns},
    "binned_ns": {binned_ns},
    "presorted_speedup_vs_naive": {presorted_vs_naive},
    "binned_speedup_vs_naive": {binned_vs_naive},
    "binned_speedup_vs_presorted": {binned_vs_presorted_json}
  }},
  "kernel_agreement": {{
    "presorted_bit_identical_to_naive": {presorted_exact},
    "val_f1_presorted": {f1_presorted:.4},
    "val_f1_binned": {f1_binned:.4},
    "binned_vs_presorted_val_f1_delta": {f1_delta:.4},
    "f1_tolerance": {F1_TOLERANCE}
  }},
  "dt_hpo_grid": {{
    "grid_points": 7,
    "evaluations_reported": {evals},
    "independent_fits_ns": {grid_naive_ns},
    "truncated_ns": {grid_fast_ns},
    "speedup": {grid_speedup:.2}
  }},
  "forest_fit": {{
    "n_trees": {n_trees},
    "max_depth": {forest_depth},
    "binned_ns": {forest_binned},
    "presorted_ns": {forest_presorted}
  }},
  "forest_predict": {{
    "rows": {predict_rows},
    "batch_ns": {forest_predict_ns},
    "ns_per_row": {per_row}
  }},
  "scale_cell": {{
    "rows": {scale_rows},
    "train_rows": {scale_train},
    "features": {scale_d},
    "streamed_block_invariant": {streamed_identical},
    "goss": {{ "top_frac": {goss_top}, "rest_frac": {goss_rest}, "kept_frac": {goss_kept} }},
    "presorted_ns": {scale_presorted_ns},
    "binned256_ns": {scale_u8_ns},
    "binned4096_ns": {scale_u16_ns},
    "binned4096_goss_ns": {scale_goss_ns},
    "wide_speedup_vs_presorted": {wide_vs_presorted:.2},
    "goss_speedup_vs_binned256": {goss_vs_u8:.2},
    "goss_speedup_vs_binned4096": {goss_vs_u16:.2},
    "holdout_f1": {{
      "presorted": {scale_presorted_f1:.4},
      "binned256": {scale_u8_f1:.4},
      "binned4096": {scale_u16_f1:.4},
      "binned4096_goss": {scale_goss_f1:.4}
    }}
  }},
  "million_row": {{ "rows": 1000000, "binned4096_goss_ns": {million_ns_json} }},
  "gates_passed": {gate_ok}
}}
"#,
        presorted_ns = ns_json(fit_presorted_ns),
        binned_ns = ns_json(fit_binned_ns),
        presorted_vs_naive = ratio_json(Some(fit_naive_ns), fit_presorted_ns),
        binned_vs_naive = ratio_json(Some(fit_naive_ns), fit_binned_ns),
        binned_vs_presorted_json = ratio_json(fit_presorted_ns, fit_binned_ns),
        evals = fast.evaluations,
        grid_speedup = grid_naive_ns as f64 / grid_fast_ns.max(1) as f64,
        n_trees = cfg.n_trees,
        forest_depth = cfg.max_depth,
        forest_binned = ns_json(forest_binned_ns),
        forest_presorted = ns_json(forest_presorted_ns),
        per_row = forest_predict_ns / predict_rows as u64,
        goss_top = GOSS_SHARES.0,
        goss_rest = GOSS_SHARES.1,
        goss_kept = goss_cfg.kept_frac(),
        million_ns_json = ns_json(million_ns),
    );

    print!("{json}");
    if !gate_ok {
        std::process::exit(1);
    }
    if let Some(path) = out_path {
        ok_or_exit(
            std::fs::write(&path, &json)
                .map_err(|source| DfsError::Io { path: PathBuf::from(&path), source }),
        );
        eprintln!("wrote {path}");
    }
}
