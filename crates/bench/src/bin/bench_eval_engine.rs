//! Before/after microbenchmark for the fused evaluation engine.
//!
//! Three measurements, mirroring the layers of the engine rework:
//!
//! 1. **Gather**: the old composed projection (`select_cols` then
//!    `select_rows`, materializing a full-height intermediate) against the
//!    fused `select_rows_cols_into` writing into a reused scratch buffer.
//! 2. **Ranking cache**: an identical multi-arm benchmark row executed
//!    with `share_artifacts` off (every TPE(ranking) arm recomputes its
//!    ranking) and on (each ranking computed once per dataset/split).
//! 3. **Streamed eval at scale**: a full predict pass over the streamed
//!    million-row corpus, gathered monolithically (one 10^6-row scratch)
//!    vs block-wise in `8192`-row chunks mirroring the runner's chunked
//!    evaluator — bit-identical predictions, ~two orders of magnitude
//!    less peak gather scratch.
//!
//! Results are printed as JSON and, when a path argument is given, also
//! written there (the committed snapshot lives at `BENCH_eval_engine.json`
//! in the repo root). Timings are medians over several repetitions so a
//! noisy neighbor cannot flip the comparison.
//!
//! Run offline with `scripts/offline-check.sh run --release -p dfs-bench
//! --bin bench_eval_engine -- BENCH_eval_engine.json`.

// The panic-free contract covers the runner/cache/checkpoint paths; a
// standalone benchmark aborting on a broken setup is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dfs_constraints::ConstraintSet;
use dfs_core::runner::{run_benchmark_opts, Arm, RunnerOptions};
use dfs_core::{MlScenario, ScenarioSettings};
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, generate_streamed_collect, million_row_spec, spec_by_name};
use dfs_fs::StrategyId;
use dfs_linalg::rng::{rng_from_seed, sample_without_replacement, uniform};
use dfs_linalg::Matrix;
use dfs_models::tree::DecisionTree;
use dfs_models::ModelKind;
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Median wall-clock over `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct GatherBench {
    rows: usize,
    cols: usize,
    picked_rows: usize,
    picked_cols: usize,
    iters: usize,
    composed_ns: u64,
    fused_ns: u64,
}

/// Old path (allocate a full-height column projection, then subsample
/// rows) vs. new path (one fused pass into a reused scratch buffer).
fn bench_gather() -> GatherBench {
    let (rows, cols) = (4000, 100);
    let (picked_rows_n, picked_cols_n) = (1500, 12);
    let iters = 200;

    let mut rng = rng_from_seed(0xBE7C);
    let data: Vec<f64> = (0..rows * cols).map(|_| uniform(-1.0, 1.0, &mut rng)).collect();
    let x = Matrix::from_vec(rows, cols, data);
    let row_idx = sample_without_replacement(rows, picked_rows_n, &mut rng);
    let col_idx = sample_without_replacement(cols, picked_cols_n, &mut rng);

    let mut sink = 0.0f64;
    let composed_ns = median_ns(5, || {
        for _ in 0..iters {
            let projected = x.select_cols(&col_idx);
            let gathered = projected.select_rows(&row_idx);
            sink += gathered.row(0)[0];
        }
    });
    let mut scratch = Matrix::zeros(0, 0);
    let fused_ns = median_ns(5, || {
        for _ in 0..iters {
            x.select_rows_cols_into(&row_idx, &col_idx, &mut scratch);
            sink += scratch.row(0)[0];
        }
    });
    assert!(sink.is_finite());

    GatherBench {
        rows,
        cols,
        picked_rows: picked_rows_n,
        picked_cols: picked_cols_n,
        iters,
        composed_ns,
        fused_ns,
    }
}

struct CacheBench {
    scenarios: usize,
    arms: usize,
    uncached_ns: u64,
    cached_ns: u64,
    uncached_ranking_computes: u64,
    cached_ranking_computes: u64,
    cached_ranking_hits: u64,
}

/// One benchmark row of TPE(ranking) arms, with and without the shared
/// artifact cache. Outcomes are bit-identical (asserted by the regression
/// suite); this measures the work saved.
fn bench_ranking_cache() -> CacheBench {
    let ds = generate(&spec_by_name("german_credit").expect("known paper-suite spec"), 23);
    let split = stratified_three_way(&ds, 23);
    let mut splits = HashMap::new();
    splits.insert("german_credit".to_string(), split);
    let scenarios: Vec<MlScenario> = (0..3)
        .map(|i| MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::DecisionTree,
            hpo: false,
            constraints: ConstraintSet::accuracy_only(0.55 + 0.05 * i as f64, Duration::from_secs(30)),
            utility_f1: false,
            seed: 31 + i as u64,
        })
        .collect();
    let arms: Vec<Arm> = RankingKind::ALL
        .into_iter()
        .map(|kind| Arm::Strategy(StrategyId::TpeRanking(kind)))
        .collect();
    let mut settings = ScenarioSettings::fast();
    settings.max_evals = 15;

    let run = |share_artifacts: bool| {
        let opts = RunnerOptions { share_artifacts, ..RunnerOptions::default() };
        let t = Instant::now();
        let m = run_benchmark_opts(&splits, scenarios.clone(), &arms, &settings, &opts);
        (t.elapsed().as_nanos() as u64, m.total_perf())
    };
    // Warm-up evens out first-touch effects (page faults, lazy init).
    let _ = run(false);
    let (uncached_ns, uncached_perf) = run(false);
    let (cached_ns, cached_perf) = run(true);

    CacheBench {
        scenarios: scenarios.len(),
        arms: arms.len(),
        uncached_ns,
        cached_ns,
        uncached_ranking_computes: uncached_perf.ranking_computes,
        cached_ranking_computes: cached_perf.ranking_computes,
        cached_ranking_hits: cached_perf.ranking_hits,
    }
}

struct StreamedEvalBench {
    rows: usize,
    picked_cols: usize,
    block_rows: usize,
    monolithic_ns: u64,
    chunked_ns: u64,
    monolithic_scratch_bytes: u64,
    chunked_scratch_bytes: u64,
}

/// A full predict pass over the streamed million-row corpus: one
/// monolithic gather of every picked column vs the runner's block-wise
/// `select_row_range_cols_into` loop. Predictions must be bit-identical
/// (asserted); the win is peak gather scratch, not wall-clock.
fn bench_streamed_eval() -> StreamedEvalBench {
    let spec = million_row_spec();
    let ds = generate_streamed_collect(&spec, 0xE7A1, 8192);
    let n = ds.x.nrows();
    let cols: Vec<usize> = (0..ds.x.ncols()).step_by(2).collect();
    // A shallow tree fit on a leading slice gives predict real structure
    // without dominating the measurement.
    let fit_rows = 20_000.min(n);
    let mut x_fit = Matrix::zeros(0, 0);
    ds.x.select_row_range_cols_into(0..fit_rows, &cols, &mut x_fit);
    let tree = DecisionTree::fit(&x_fit, &ds.y[..fit_rows], 6);

    let block = 8192usize;
    let mut scratch = Matrix::zeros(0, 0);
    let mut mono_preds: Vec<bool> = Vec::new();
    let monolithic_ns = median_ns(3, || {
        ds.x.select_cols_into(&cols, &mut scratch);
        mono_preds = scratch.rows_iter().map(|r| tree.predict_one(r)).collect();
    });
    let mut block_scratch = Matrix::zeros(0, 0);
    let mut chunk_preds: Vec<bool> = Vec::new();
    let chunked_ns = median_ns(3, || {
        chunk_preds.clear();
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + block).min(n);
            ds.x.select_row_range_cols_into(lo..hi, &cols, &mut block_scratch);
            chunk_preds.extend(block_scratch.rows_iter().map(|r| tree.predict_one(r)));
            lo = hi;
        }
    });
    assert_eq!(mono_preds, chunk_preds, "chunked predict pass must be bit-identical");

    StreamedEvalBench {
        rows: n,
        picked_cols: cols.len(),
        block_rows: block,
        monolithic_ns,
        chunked_ns,
        monolithic_scratch_bytes: (n * cols.len() * 8) as u64,
        chunked_scratch_bytes: (block * cols.len() * 8) as u64,
    }
}

fn main() {
    let stamp = dfs_bench::stamp::stamp_json_fields();
    let gather = bench_gather();
    let cache = bench_ranking_cache();
    let streamed = bench_streamed_eval();

    let ratio = |old: u64, new: u64| old as f64 / new.max(1) as f64;
    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "bench": "eval_engine",
  {stamp},
  "gather": {{
    "matrix": [{rows}, {cols}],
    "picked": [{prows}, {pcols}],
    "iters_per_sample": {iters},
    "composed_ns": {composed},
    "fused_ns": {fused},
    "speedup": {gspeed:.2}
  }},
  "ranking_cache": {{
    "scenarios": {nsc},
    "arms": {narms},
    "uncached_ns": {unc},
    "cached_ns": {cac},
    "uncached_ranking_computes": {ucomp},
    "cached_ranking_computes": {ccomp},
    "cached_ranking_hits": {chits},
    "compute_reduction": {cred:.2},
    "speedup": {cspeed:.2}
  }},
  "streamed_eval": {{
    "rows": {srows},
    "picked_cols": {scols},
    "block_rows": {sblock},
    "monolithic_ns": {smono},
    "chunked_ns": {schunk},
    "monolithic_scratch_bytes": {smbytes},
    "chunked_scratch_bytes": {scbytes},
    "scratch_reduction": {sred:.1},
    "chunked_vs_monolithic": {srel:.2}
  }}
}}
"#,
        rows = gather.rows,
        cols = gather.cols,
        prows = gather.picked_rows,
        pcols = gather.picked_cols,
        iters = gather.iters,
        composed = gather.composed_ns,
        fused = gather.fused_ns,
        gspeed = ratio(gather.composed_ns, gather.fused_ns),
        nsc = cache.scenarios,
        narms = cache.arms,
        unc = cache.uncached_ns,
        cac = cache.cached_ns,
        ucomp = cache.uncached_ranking_computes,
        ccomp = cache.cached_ranking_computes,
        chits = cache.cached_ranking_hits,
        cred = ratio(cache.uncached_ranking_computes, cache.cached_ranking_computes),
        cspeed = ratio(cache.uncached_ns, cache.cached_ns),
        srows = streamed.rows,
        scols = streamed.picked_cols,
        sblock = streamed.block_rows,
        smono = streamed.monolithic_ns,
        schunk = streamed.chunked_ns,
        smbytes = streamed.monolithic_scratch_bytes,
        scbytes = streamed.chunked_scratch_bytes,
        sred = ratio(streamed.monolithic_scratch_bytes, streamed.chunked_scratch_bytes),
        srel = ratio(streamed.monolithic_ns, streamed.chunked_ns),
    );

    print!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &json).expect("write benchmark json");
        eprintln!("wrote {path}");
    }
}
