//! Observability overhead benchmark (the disabled-mode ≤2% contract).
//!
//! DESIGN.md § 4e promises that with tracing disabled every instrumentation
//! site costs one relaxed atomic load, and that the aggregate drag on an
//! evaluation stays under 2%. This bench measures both halves:
//!
//! 1. **Per-site cost, disabled**: median ns of `obs::span`, `obs::counter`
//!    and `obs::heartbeat` calls with tracing off (the heartbeat is not
//!    flag-gated — it must stay live for the watchdog — so it is billed
//!    separately).
//! 2. **Sites per evaluation**: one traced run of a small benchmark matrix
//!    through a [`RunObserver`]; the journal's enter/count/log events per
//!    recorded evaluation give the real site density.
//! 3. **Evaluation cost, disabled**: median wall time of the same matrix
//!    with tracing off, divided by the evaluations performed.
//!
//! `overhead_pct = (sites_per_eval * site_ns + hb_per_eval * hb_ns)
//! / eval_ns * 100`. The process exits nonzero above 2.0%, making the
//! contract CI-enforceable. Results are printed as JSON and, when a path
//! argument is given, also written there (committed snapshot:
//! `BENCH_obs.json`). The traced run's Chrome trace / metrics / journal are
//! exported under `DFS_TRACE_DIR` for artifact upload.
//!
//! Run offline with `scripts/offline-check.sh run --release -p dfs-bench
//! --bin bench_obs -- BENCH_obs.json`.

use dfs_bench::ok_or_exit;
use dfs_constraints::ConstraintSet;
use dfs_core::runner::{run_benchmark_opts, Arm, BenchmarkMatrix, RunnerOptions};
use dfs_core::{obs, DfsError, MlScenario, ScenarioSettings};
use dfs_data::split::stratified_three_way;
use dfs_data::synthetic::{generate, spec_by_name};
use dfs_data::Split;
use dfs_fs::StrategyId;
use dfs_models::ModelKind;
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Median wall-clock over `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Per-call cost of `f` in ns, amortized over a tight loop.
fn per_call_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let ns = median_ns(5, || {
        for _ in 0..iters {
            f();
        }
    });
    ns as f64 / iters as f64
}

fn matrix_corpus() -> (HashMap<String, Split>, Vec<MlScenario>, Vec<Arm>) {
    let Some(spec) = spec_by_name("german_credit") else {
        ok_or_exit::<()>(Err(DfsError::UnknownDataset { dataset: "german_credit".into() }));
        unreachable!("ok_or_exit exits on Err");
    };
    let ds = generate(&spec, 29);
    let mut splits = HashMap::new();
    splits.insert("german_credit".to_string(), stratified_three_way(&ds, 29));
    let generous = Duration::from_secs(120);
    let mut with_safety = ConstraintSet::accuracy_only(0.55, generous);
    with_safety.min_safety = Some(0.2);
    let scenarios = vec![
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::DecisionTree,
            hpo: true,
            constraints: ConstraintSet::accuracy_only(0.55, generous),
            utility_f1: false,
            seed: 51,
        },
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::LogisticRegression,
            hpo: false,
            constraints: with_safety,
            utility_f1: false,
            seed: 52,
        },
        MlScenario {
            dataset: "german_credit".into(),
            model: ModelKind::GaussianNb,
            hpo: false,
            constraints: ConstraintSet::accuracy_only(0.60, generous),
            utility_f1: false,
            seed: 53,
        },
    ];
    let arms = vec![
        Arm::Original,
        Arm::Strategy(StrategyId::Sfs),
        Arm::Strategy(StrategyId::Nsga2Nr),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::Chi2)),
        Arm::Strategy(StrategyId::TpeRanking(RankingKind::ReliefF)),
    ];
    (splits, scenarios, arms)
}

fn run_matrix(
    splits: &HashMap<String, Split>,
    scenarios: &[MlScenario],
    arms: &[Arm],
    observer: Option<&obs::RunObserver>,
) -> BenchmarkMatrix {
    let mut settings = ScenarioSettings::fast();
    settings.max_evals = 24; // eval-capped: the wall clock never binds
    let opts = RunnerOptions { threads: 1, inner_threads: 1, observer, ..RunnerOptions::default() };
    run_benchmark_opts(splits, scenarios.to_vec(), arms, &settings, &opts)
}

fn total_evaluations(m: &BenchmarkMatrix) -> u64 {
    m.results.iter().flatten().map(|c| c.evaluations as u64).sum()
}

/// Counts the journal events that correspond to one instrumentation call
/// each: span entries, counter bumps, and log records (exits ride on the
/// span guard already billed by its enter).
fn site_events(journal: &str) -> u64 {
    journal
        .lines()
        .filter(|l| {
            l.contains("\"e\":\"enter\"")
                || l.contains("\"e\":\"count\"")
                || l.contains("\"e\":\"log\"")
        })
        .count() as u64
}

fn main() {
    let stamp = dfs_bench::stamp::stamp_json_fields();
    let (splits, scenarios, arms) = matrix_corpus();

    // 1. Disabled per-site costs. Tracing is explicitly latched off so a
    //    stray DFS_TRACE=1 in the environment cannot turn this into an
    //    enabled-mode measurement.
    obs::set_trace_enabled(false);
    let iters = 4_000_000u64;
    let span_ns = per_call_ns(iters, || drop(black_box(obs::span("bench.site"))));
    let counter_ns = per_call_ns(iters, || obs::counter(black_box("bench.site"), 1));
    let heartbeat_ns = per_call_ns(iters, || obs::heartbeat(black_box("bench.site")));
    let site_ns = span_ns.max(counter_ns);

    // 2. Disabled evaluation cost on the real matrix.
    let mut evals_disabled = 0u64;
    let matrix_ns = median_ns(3, || {
        let m = run_matrix(&splits, &scenarios, &arms, None);
        evals_disabled = total_evaluations(&m);
    });
    let eval_ns = matrix_ns as f64 / evals_disabled.max(1) as f64;

    // 3. Site density from one traced run of the same matrix.
    let observer = obs::RunObserver::new("bench-obs");
    obs::set_trace_enabled(true);
    let traced = run_matrix(&splits, &scenarios, &arms, Some(&observer));
    obs::set_trace_enabled(false);
    let evals_traced = total_evaluations(&traced);
    let journal = observer.journal(true);
    let sites = site_events(&journal);
    let sites_per_eval = sites as f64 / evals_traced.max(1) as f64;
    // Heartbeats are not journal events; bill the three eval-phase beats
    // (gather / fit / attack) per evaluation explicitly.
    let hb_per_eval = 3.0;

    let trace = observer.chrome_trace();
    let trace_valid = trace.starts_with("{\"traceEvents\":[")
        && trace.trim_end().ends_with("]}")
        && trace.matches('{').count() == trace.matches('}').count();
    dfs_bench::corpus::export_traces(&observer);

    let overhead_pct =
        (sites_per_eval * site_ns + hb_per_eval * heartbeat_ns) / eval_ns.max(1.0) * 100.0;
    let pass = overhead_pct <= MAX_OVERHEAD_PCT && trace_valid;

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "bench": "obs_overhead",
  {stamp},
  "contract_max_overhead_pct": {MAX_OVERHEAD_PCT},
  "disabled_span_ns": {span_ns:.3},
  "disabled_counter_ns": {counter_ns:.3},
  "disabled_heartbeat_ns": {heartbeat_ns:.3},
  "matrix": {{
    "scenarios": {scenarios},
    "arms": {arms},
    "evaluations": {evals_disabled},
    "disabled_median_ns": {matrix_ns},
    "disabled_eval_ns": {eval_ns:.0}
  }},
  "site_events_traced": {sites},
  "sites_per_eval": {sites_per_eval:.2},
  "heartbeats_per_eval": {hb_per_eval},
  "chrome_trace_valid": {trace_valid},
  "overhead_pct": {overhead_pct:.4},
  "pass": {pass}
}}
"#,
        scenarios = scenarios.len(),
        arms = arms.len(),
    );

    print!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        ok_or_exit(
            std::fs::write(&path, &json)
                .map_err(|source| DfsError::Io { path: PathBuf::from(&path), source }),
        );
        eprintln!("wrote {path}");
    }
    if !trace_valid {
        eprintln!("[dfs-bench] fatal: Chrome trace export is not well-formed");
        std::process::exit(1);
    }
    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "[dfs-bench] fatal: disabled-mode observability overhead {overhead_pct:.3}% \
             exceeds the {MAX_OVERHEAD_PCT}% contract"
        );
        std::process::exit(1);
    }
}
