//! Shared provenance stamp for every `BENCH_*.json` artifact.
//!
//! The committed bench snapshots are compared across commits and hosts;
//! a number without its context (which commit, how many cores, what
//! `DFS_THREADS` pin) is noise. Every bench binary splices
//! [`stamp_json_fields`] into its JSON header so all artifacts carry the
//! same schema-versioned provenance block, and the process harness
//! (`dfs bench-harness`) stamps the equivalent fields in its
//! `summary.json`.

/// Version of the shared `BENCH_*.json` header. Bump when the stamp
/// fields change shape; consumers diffing artifacts across commits key
/// on this.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// `git rev-parse --short HEAD`, or `"unknown"` when git or the repo is
/// unavailable (the artifacts must still be writable from a tarball).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric()))
        .unwrap_or_else(|| "unknown".into())
}

/// Host logical CPU count.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The `DFS_THREADS` pin in effect, or `None` when the env var is unset
/// or unparseable (the run used the library default).
pub fn dfs_threads() -> Option<usize> {
    std::env::var("DFS_THREADS").ok().and_then(|v| v.parse().ok())
}

/// The shared stamp as a JSON object-body fragment (no surrounding
/// braces), indented to sit inside the artifact's top-level object:
///
/// ```text
/// "schema_version": 2,
///   "git_commit": "abc1234",
///   "host_cpus": 8,
///   "dfs_threads": null
/// ```
pub fn stamp_json_fields() -> String {
    let threads =
        dfs_threads().map_or_else(|| "null".to_string(), |t| t.to_string());
    format!(
        "\"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"git_commit\": \"{}\",\n  \
         \"host_cpus\": {},\n  \"dfs_threads\": {threads}",
        git_commit(),
        host_cpus(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_fields_are_well_formed() {
        let stamp = stamp_json_fields();
        assert!(stamp.starts_with("\"schema_version\": 2,"));
        assert!(stamp.contains("\"git_commit\": \""));
        assert!(stamp.contains("\"host_cpus\": "));
        assert!(stamp.contains("\"dfs_threads\": "));
        // Splicing into an object must yield balanced, quoted JSON: no
        // stray braces, no unescaped quotes beyond the field syntax.
        let wrapped = format!("{{\n  {stamp}\n}}");
        assert_eq!(wrapped.matches('{').count(), 1);
        assert_eq!(wrapped.matches('}').count(), 1);
        assert_eq!(wrapped.matches('"').count() % 2, 0);
    }

    #[test]
    fn commit_is_short_hex_or_unknown() {
        let commit = git_commit();
        assert!(!commit.is_empty());
        assert!(commit.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    fn host_cpus_positive() {
        assert!(host_cpus() >= 1);
    }
}
