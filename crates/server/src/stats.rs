//! Lock-free server counters, snapshot into the wire `ServerStats`.

use dfs_obs::AtomicHistogram;
use dfs_proto::ServerStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters bumped from accept, handler, and worker threads,
/// plus log-bucketed latency histograms so `dfs stats` and the bench
/// harness see tails, not just totals.
#[derive(Debug, Default)]
pub struct Stats {
    pub connections: AtomicU64,
    pub served: AtomicU64,
    pub succeeded: AtomicU64,
    pub shed: AtomicU64,
    pub panicked: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub malformed: AtomicU64,
    /// End-to-end request latency (ns), recorded by the connection
    /// handler for every admitted query when its reply resolves.
    pub latency: AtomicHistogram,
    /// Queue wait (ns): admission to execution start, recorded by the
    /// worker as it picks the job up.
    pub queue_wait: AtomicHistogram,
}

impl Stats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot with the warm-cache counters supplied by the engine.
    pub fn snapshot(&self, ranking_computes: u64, ranking_hits: u64) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            ranking_computes,
            ranking_hits,
            latency_hist: self.latency.snapshot().encode_sparse(),
            queue_hist: self.queue_wait.snapshot().encode_sparse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_obs::Histogram;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.served);
        Stats::bump(&s.served);
        Stats::bump(&s.shed);
        let snap = s.snapshot(3, 9);
        assert_eq!(snap.served, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.ranking_computes, 3);
        assert_eq!(snap.ranking_hits, 9);
        assert_eq!(snap.panicked, 0);
    }

    #[test]
    fn snapshot_carries_decodable_histograms() {
        let s = Stats::default();
        s.latency.record(1_500_000);
        s.latency.record(2_500_000);
        s.queue_wait.record(10_000);
        let snap = s.snapshot(0, 0);
        let lat = Histogram::decode_sparse(&snap.latency_hist).expect("latency decodes");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 4_000_000);
        let queue = Histogram::decode_sparse(&snap.queue_hist).expect("queue decodes");
        assert_eq!(queue.count, 1);
    }
}
