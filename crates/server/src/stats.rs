//! Lock-free server counters, snapshot into the wire `ServerStats`.

use dfs_proto::ServerStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters bumped from accept, handler, and worker threads.
#[derive(Debug, Default)]
pub struct Stats {
    pub connections: AtomicU64,
    pub served: AtomicU64,
    pub succeeded: AtomicU64,
    pub shed: AtomicU64,
    pub panicked: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub malformed: AtomicU64,
}

impl Stats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot with the warm-cache counters supplied by the engine.
    pub fn snapshot(&self, ranking_computes: u64, ranking_hits: u64) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            ranking_computes,
            ranking_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.served);
        Stats::bump(&s.served);
        Stats::bump(&s.shed);
        let snap = s.snapshot(3, 9);
        assert_eq!(snap.served, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.ranking_computes, 3);
        assert_eq!(snap.ranking_hits, 9);
        assert_eq!(snap.panicked, 0);
    }
}
