//! The bounded admission queue: load-shedding, never a hang.
//!
//! `try_push` is non-blocking — a full or closed queue returns the item to
//! the caller immediately, which the connection handler converts into an
//! explicit `Overloaded` error frame. `pop` blocks (workers park here) and
//! returns `None` once the queue is closed and empty. `close` hands the
//! still-queued items back to the drain path so every shed request gets a
//! response instead of a silently dropped connection.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the parking_lot build-stub has
//! no condvar); lock poisoning is recovered, not propagated — a panicking
//! worker must not wedge admission for everyone else.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why `try_push` handed the item back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity: shed under load.
    Full {
        /// The rejected item.
        item: T,
        /// Items waiting when the shed decision was made.
        queued: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// Queue closed (server draining): shed by policy.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with explicit shedding.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues without blocking; a full or closed queue sheds the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full { item, queued: s.items.len(), capacity: self.capacity });
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue and returns everything still waiting, so the
    /// caller can answer each shed request explicitly.
    pub fn close(&self) -> Vec<T> {
        let mut s = self.lock();
        s.closed = true;
        let shed: Vec<T> = s.items.drain(..).collect();
        drop(s);
        self.ready.notify_all();
        shed
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_with_occupancy() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        match q.try_push(3) {
            Err(PushError::Full { item, queued, capacity }) => {
                assert_eq!((item, queued, capacity), (3, 2, 2));
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_returns_queued_items_and_wakes_poppers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).expect("push");
        q.try_push(11).expect("push");
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Drain the two items, then block until close.
                let mut got = vec![];
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Give the waiter time to drain and park.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let shed = q.close();
        assert!(shed.is_empty(), "waiter already drained the queue");
        assert_eq!(waiter.join().expect("join"), vec![10, 11]);
        assert_eq!(q.pop(), None, "closed+empty pops None");
        assert!(matches!(q.try_push(99), Err(PushError::Closed(99))));
    }

    #[test]
    fn close_with_backlog_hands_items_back() {
        let q = BoundedQueue::new(8);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        let shed = q.close();
        assert_eq!(shed, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).expect("capacity clamps to 1");
        assert!(matches!(q.try_push(2), Err(PushError::Full { .. })));
    }
}
