//! The query engine: spec → scenario → `run_dfs_with_exec`, with warm
//! caches shared across requests.
//!
//! Two caches make the daemon faster than one-shot CLI runs:
//!
//! - **Prepared datasets/splits** — generating a synthetic dataset and its
//!   stratified three-way split is deterministic in `(name, rows, seed)`,
//!   so the first request pays and every later request reuses the `Arc`.
//! - **The shared [`ArtifactCache`]** — rankings are keyed by
//!   `(dataset, split fingerprint, kind)` with arm-independent seeds
//!   (PR 2's determinism contract), so requests from different
//!   connections warm each other without changing any result bit.
//! - **The shared [`EvalMemo`]** — whole subset measurements keyed by
//!   `(dataset, split fingerprint, settings fingerprint, eval leg,
//!   subset)`; a repeated or overlapping query skips the model fits the
//!   first one already paid, again without changing any result bit
//!   (DESIGN.md § 4h).
//!
//! Every query cell runs on the server's pinned [`Executor`] permit pool:
//! results are bit-identical for any pool width, so the chaos suite can
//! compare a 1-thread and a 4-thread server fingerprint-for-fingerprint.

use dfs_core::prelude::*;
use dfs_core::switching::{run_with_switching, SwitchConfig};
use dfs_core::workflow::run_dfs_with_exec;
use dfs_data::split::{stratified_three_way, Split};
use dfs_data::synthetic::{generate, spec_by_name};
use dfs_data::Dataset;
use dfs_proto::{ErrorCode, QueryResult, QuerySpec, WireError};
use dfs_rankings::RankingKind;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The strategy a query resolved to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedStrategy {
    Fixed(StrategyId),
    /// Dynamic strategy switching (paper § 7).
    Auto,
}

/// Parses the wire strategy name (same vocabulary as the CLI).
pub fn parse_strategy(s: &str) -> Result<ResolvedStrategy, String> {
    let fixed = |id| Ok(ResolvedStrategy::Fixed(id));
    match s {
        "auto" => Ok(ResolvedStrategy::Auto),
        "sfs" => fixed(StrategyId::Sfs),
        "sbs" => fixed(StrategyId::Sbs),
        "sffs" => fixed(StrategyId::Sffs),
        "sbfs" => fixed(StrategyId::Sbfs),
        "rfe" => fixed(StrategyId::Rfe),
        "es" => fixed(StrategyId::Es),
        "tpe" => fixed(StrategyId::TpeNr),
        "sa" => fixed(StrategyId::SaNr),
        "nsga2" => fixed(StrategyId::Nsga2Nr),
        "chi2" => fixed(StrategyId::TpeRanking(RankingKind::Chi2)),
        "variance" => fixed(StrategyId::TpeRanking(RankingKind::Variance)),
        "fisher" => fixed(StrategyId::TpeRanking(RankingKind::Fisher)),
        "mim" => fixed(StrategyId::TpeRanking(RankingKind::Mim)),
        "fcbf" => fixed(StrategyId::TpeRanking(RankingKind::Fcbf)),
        "relieff" => fixed(StrategyId::TpeRanking(RankingKind::ReliefF)),
        "mcfs" => fixed(StrategyId::TpeRanking(RankingKind::Mcfs)),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

/// Parses the wire model name.
pub fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s {
        "lr" => Ok(ModelKind::LogisticRegression),
        "nb" => Ok(ModelKind::GaussianNb),
        "dt" => Ok(ModelKind::DecisionTree),
        "svm" => Ok(ModelKind::LinearSvm),
        other => Err(format!("unknown model '{other}'")),
    }
}

/// A generated dataset plus its deterministic three-way split.
pub struct Prepared {
    pub dataset: Dataset,
    pub split: Split,
}

type SplitKey = (String, u64, u64);

/// Warm, shared execution state for all requests.
pub struct Engine {
    exec: Arc<Executor>,
    artifacts: Arc<ArtifactCache>,
    memo: Arc<EvalMemo>,
    splits: Mutex<HashMap<SplitKey, Arc<Prepared>>>,
    base_settings: ScenarioSettings,
}

impl Engine {
    /// An engine whose query cells run on a pinned permit pool of
    /// `threads` (determinism contract: results do not depend on this).
    pub fn new(threads: usize) -> Self {
        Self {
            exec: Arc::new(Executor::new(threads)),
            artifacts: Arc::new(ArtifactCache::new()),
            memo: Arc::new(EvalMemo::new()),
            splits: Mutex::new(HashMap::new()),
            base_settings: ScenarioSettings::default_bench(),
        }
    }

    /// (rankings computed, rankings served warm) across all requests.
    pub fn ranking_counts(&self) -> (u64, u64) {
        self.artifacts.counts()
    }

    /// (memo hits, misses, inserts) across all requests — the
    /// subset-measurement analogue of [`Engine::ranking_counts`].
    pub fn memo_counts(&self) -> (u64, u64, u64) {
        self.memo.counts()
    }

    fn splits_lock(&self) -> MutexGuard<'_, HashMap<SplitKey, Arc<Prepared>>> {
        self.splits.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Cheap semantic validation, run by the connection handler *before*
    /// admission so malformed queries never occupy a queue slot.
    pub fn validate(&self, spec: &QuerySpec) -> Result<(), WireError> {
        let malformed = |msg: String| WireError::new(spec.req_id, ErrorCode::MalformedQuery, msg);
        parse_strategy(&spec.strategy).map_err(&malformed)?;
        parse_model(&spec.model).map_err(&malformed)?;
        if spec_by_name(&spec.dataset).is_none() {
            return Err(malformed(format!("unknown dataset '{}'", spec.dataset)));
        }
        if !spec.min_f1.is_finite() || !(0.0..=1.0).contains(&spec.min_f1) {
            return Err(malformed(format!("min_f1 {} outside [0, 1]", spec.min_f1)));
        }
        Ok(())
    }

    /// Returns the prepared dataset+split for a spec, generating on miss.
    fn prepared(&self, spec: &QuerySpec) -> Result<Arc<Prepared>, WireError> {
        let key: SplitKey = (spec.dataset.clone(), spec.rows.unwrap_or(0), spec.seed);
        if let Some(hit) = self.splits_lock().get(&key) {
            return Ok(Arc::clone(hit));
        }
        let mut dspec = spec_by_name(&spec.dataset).ok_or_else(|| {
            WireError::new(
                spec.req_id,
                ErrorCode::MalformedQuery,
                format!("unknown dataset '{}'", spec.dataset),
            )
        })?;
        if let Some(rows) = spec.rows {
            dspec.rows = dspec.rows.min(rows as usize).max(30);
        }
        let dataset = generate(&dspec, spec.seed);
        let split = stratified_three_way(&dataset, spec.seed);
        let prepared = Arc::new(Prepared { dataset, split });
        // Two racing requests may both generate; identical inputs produce
        // identical data, so last-write-wins is harmless.
        self.splits_lock().insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Executes a validated query under the given effective budget.
    ///
    /// Runs on the *worker/cell thread*: panics (including the chaos
    /// plan's `PanicInCell`) unwind into the caller's `catch_unwind`.
    pub fn run(
        &self,
        spec: &QuerySpec,
        search_time: Duration,
        max_evals: usize,
        inject_panic: bool,
    ) -> Result<QueryResult, WireError> {
        if inject_panic {
            panic!("chaos: injected cell panic (req {})", spec.req_id);
        }
        let started = Instant::now();
        let malformed = |msg: String| WireError::new(spec.req_id, ErrorCode::MalformedQuery, msg);
        let strategy = parse_strategy(&spec.strategy).map_err(&malformed)?;
        let model = parse_model(&spec.model).map_err(&malformed)?;
        let prepared = self.prepared(spec)?;

        let constraints = ConstraintSet {
            min_f1: spec.min_f1,
            max_search_time: search_time,
            max_feature_frac: spec.max_feature_frac,
            min_eo: spec.min_fairness,
            min_safety: spec.min_safety,
            privacy_epsilon: spec.privacy_epsilon,
        };
        constraints.validate().map_err(|e| malformed(format!("invalid constraints: {e}")))?;
        let scenario = MlScenario {
            dataset: prepared.dataset.name.clone(),
            model,
            hpo: spec.hpo,
            constraints,
            utility_f1: false,
            seed: spec.seed,
        };
        let mut settings = self.base_settings.clone();
        settings.max_evals = max_evals;

        let result = match strategy {
            ResolvedStrategy::Fixed(id) => {
                let out = run_dfs_with_exec(
                    &scenario,
                    &prepared.split,
                    &settings,
                    id,
                    Some(&self.artifacts),
                    Some(&self.exec),
                    Some(&self.memo),
                );
                QueryResult {
                    req_id: spec.req_id,
                    strategy: out.strategy.name(),
                    success: out.success,
                    subset: out.subset.unwrap_or_default().iter().map(|&i| i as u64).collect(),
                    val_distance: out.val_distance,
                    test_distance: out.test_distance,
                    evaluations: out.evaluations as u64,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    model_fits: out.perf.model_fits,
                    ranking_computes: out.perf.ranking_computes,
                    ranking_hits: out.perf.ranking_hits,
                }
            }
            ResolvedStrategy::Auto => {
                let cfg = SwitchConfig::default();
                let out = run_with_switching(&scenario, &prepared.split, &settings, &cfg);
                QueryResult {
                    req_id: spec.req_id,
                    strategy: out.winner.map_or_else(|| "auto".to_string(), |w| w.name()),
                    success: out.success,
                    // The switching API reports satisfaction, not raw
                    // distances; encode "not measured" as NaN (the wire
                    // format round-trips it).
                    subset: out.subset.unwrap_or_default().iter().map(|&i| i as u64).collect(),
                    val_distance: if out.success { 0.0 } else { f64::NAN },
                    test_distance: if out.success { 0.0 } else { f64::NAN },
                    evaluations: out.evaluations as u64,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    model_fits: 0,
                    ranking_computes: 0,
                    ranking_hits: 0,
                }
            }
        };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_spec(req_id: u64) -> QuerySpec {
        let mut s = QuerySpec::example(req_id);
        s.rows = Some(120);
        s
    }

    #[test]
    fn validate_rejects_unknowns() {
        let e = Engine::new(1);
        assert!(e.validate(&fast_spec(1)).is_ok());
        let mut bad = fast_spec(2);
        bad.strategy = "warp".into();
        assert_eq!(e.validate(&bad).map_err(|w| w.code), Err(ErrorCode::MalformedQuery));
        let mut bad = fast_spec(3);
        bad.model = "xgboost".into();
        assert_eq!(e.validate(&bad).map_err(|w| w.code), Err(ErrorCode::MalformedQuery));
        let mut bad = fast_spec(4);
        bad.dataset = "ghost".into();
        assert_eq!(e.validate(&bad).map_err(|w| w.code), Err(ErrorCode::MalformedQuery));
        let mut bad = fast_spec(5);
        bad.min_f1 = f64::NAN;
        assert_eq!(e.validate(&bad).map_err(|w| w.code), Err(ErrorCode::MalformedQuery));
    }

    #[test]
    fn identical_specs_share_one_prepared_split() {
        let e = Engine::new(1);
        let a = e.prepared(&fast_spec(1)).expect("prepare");
        let b = e.prepared(&fast_spec(2)).expect("prepare");
        assert!(Arc::ptr_eq(&a, &b), "same (dataset, rows, seed) must hit the cache");
        let mut other = fast_spec(3);
        other.seed = 999;
        let c = e.prepared(&other).expect("prepare");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn run_is_bit_identical_across_executor_widths() {
        let spec = fast_spec(7);
        let budget = Duration::from_millis(400);
        let narrow = Engine::new(1).run(&spec, budget, 25, false).expect("run");
        let wide = Engine::new(4).run(&spec, budget, 25, false).expect("run");
        assert_eq!(narrow.fingerprint(), wide.fingerprint());
    }

    #[test]
    fn injected_panic_unwinds() {
        let e = Engine::new(1);
        let spec = fast_spec(9);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run(&spec, Duration::from_millis(100), 10, true)
        }));
        assert!(caught.is_err(), "chaos panic must unwind");
    }
}
