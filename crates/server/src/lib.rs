//! `dfs-server` — a fault-tolerant constraint-query daemon.
//!
//! The paper frames declarative feature selection as a *system* answering
//! constraint queries; this crate turns the fault-isolated, warm-cacheable
//! library into exactly that. One process serves many clients over the
//! [`dfs_proto`] frame protocol, and every PR-1 robustness guarantee is
//! extended across the network boundary:
//!
//! - **Admission control** — per-request wall-clock and evaluation quotas
//!   (requests above quota get a terminal `budget_exceeded`); the admitted
//!   request's [`Budget`] starts at admission, so queue wait counts
//!   against its deadline.
//! - **Load shedding** — a bounded queue that answers `overloaded`
//!   immediately when full or draining; a request is never silently
//!   dropped and never waits unboundedly.
//! - **Deadline propagation** — the client's `deadline_ms` drives a
//!   per-request watchdog; a blown deadline reports the cell's last
//!   [`dfs_obs::Heartbeat`] phase (`CellTimedOut`-style attribution) in
//!   the error frame.
//! - **Panic isolation** — query cells run under `catch_unwind` on named
//!   threads and connection handlers are themselves unwind-isolated: a
//!   panicking query answers `internal` and the daemon keeps serving.
//! - **Graceful drain** — SIGTERM (or a `shutdown` request) stops
//!   accepting, sheds the queue with explicit `overloaded` responses,
//!   lets in-flight queries finish and their responses flush, then writes
//!   the stats sidecar atomically. Every step logs an `obs` journal event.
//! - **Deterministic chaos** — a [`ServerFaultPlan`] keyed by client
//!   request id injects drop-mid-frame, handler stalls, response
//!   corruption, and in-cell panics on the exact production code paths,
//!   one-shot each, so every failure mode is a reproducible test.
//!
//! Warm state (prepared splits, the shared `ArtifactCache`) lives in
//! [`engine::Engine`]; results are bit-identical for any executor width
//! and any cache temperature.

pub mod engine;
pub mod queue;
pub mod stats;

use dfs_core::{DfsError, ServerFaultKind, ServerFaultPlan};
use dfs_obs::{self as obs, RunObserver};
use dfs_proto::frame::{encode_frame, read_frame, FrameError, HEADER_LEN};
use dfs_proto::{ErrorCode, Request, Response, ServerStats, WireError};
use dfs_search::Budget;
use engine::Engine;
use queue::{BoundedQueue, PushError};
use stats::Stats;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs. Defaults are sized for tests and small hosts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads pulling from the admission queue (concurrent
    /// queries in flight).
    pub workers: usize,
    /// Executor permit-pool width for each query cell. Results are
    /// bit-identical for any value (the determinism contract); this only
    /// sets intra-query parallelism.
    pub threads: usize,
    /// Admission queue capacity; pushes beyond it shed with `overloaded`.
    pub queue_depth: usize,
    /// Hard per-request search-time quota; requests asking for more are
    /// rejected (`budget_exceeded`), not clamped.
    pub quota_time: Duration,
    /// Hard per-request evaluation quota.
    pub quota_evals: usize,
    /// Search time applied when a query sends `time_ms = 0`.
    pub default_time: Duration,
    /// Evaluation cap applied when a query sends `max_evals = 0`.
    pub default_evals: usize,
    /// Watchdog slack added on top of the search time when the client
    /// supplies no deadline (covers result confirmation and queue wait).
    pub deadline_grace: Duration,
    /// Per-connection read idle timeout; an idle connection is closed.
    pub idle_timeout: Duration,
    /// Per-connection write timeout (a stuck client cannot wedge a
    /// handler).
    pub write_timeout: Duration,
    /// Where to flush the stats sidecar on drain (atomic tmp+rename).
    pub sidecar: Option<PathBuf>,
    /// Deterministic server-side fault injection, keyed by request id.
    pub chaos: ServerFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            threads: 1,
            queue_depth: 32,
            quota_time: Duration::from_secs(5),
            quota_evals: 5_000,
            default_time: Duration::from_millis(300),
            default_evals: 60,
            deadline_grace: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            sidecar: None,
            chaos: ServerFaultPlan::new(),
        }
    }
}

/// One admitted query waiting for (or on) a worker.
struct Job {
    spec: dfs_proto::QuerySpec,
    /// Effective search-time budget (scenario Max Search Time).
    search_time: Duration,
    /// Effective evaluation cap.
    max_evals: usize,
    /// Whole-request deadline (watchdog limit), measured by `budget`.
    deadline: Duration,
    /// Started at admission: queue wait counts against the deadline.
    budget: Budget,
    /// Chaos: panic inside the query cell.
    panic_in_cell: bool,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    cfg: ServerConfig,
    queue: BoundedQueue<Job>,
    stats: Stats,
    engine: Engine,
    chaos: Mutex<ServerFaultPlan>,
    draining: AtomicBool,
    /// Set by a client `shutdown` request; the host (CLI) polls it and
    /// calls [`ServerHandle::drain`].
    shutdown_requested: AtomicBool,
    /// Admitted queries whose response has not been written yet.
    pending: AtomicUsize,
    /// Live connection handlers.
    active_handlers: AtomicUsize,
    /// Registered sockets, shut down at drain to unblock idle readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn conns_lock(&self) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn chaos_lock(&self) -> MutexGuard<'_, ServerFaultPlan> {
        self.chaos.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn snapshot(&self) -> ServerStats {
        let (computes, hits) = self.engine.ranking_counts();
        self.stats.snapshot(computes, hits)
    }
}

/// What [`ServerHandle::drain`] observed.
#[derive(Debug)]
pub struct DrainReport {
    /// Queued requests shed with `overloaded` during drain.
    pub shed: usize,
    /// Final counters (also flushed to the sidecar when configured).
    pub stats: ServerStats,
    /// The drain's obs journal (timestamp-stripped). Empty unless tracing
    /// is enabled.
    pub journal: String,
}

/// A running server. Dropping the handle without [`ServerHandle::drain`]
/// shuts down abruptly (queue closed, sockets severed, no joins).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drained: bool,
}

/// Namespace for [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds, starts the accept loop and worker pool, and returns a handle.
    pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let chaos = cfg.chaos.clone();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_depth),
            stats: Stats::default(),
            engine: Engine::new(cfg.threads),
            chaos: Mutex::new(chaos),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            active_handlers: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            cfg,
        });

        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("dfs-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
            workers.push(handle);
        }

        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dfs-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        obs::info!("dfs-server", "listening on {addr}");
        Ok(ServerHandle { addr, shared, accept: Some(accept), workers, drained: false })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// `true` once a client sent a `shutdown` request. The host decides
    /// when to act on it (usually by calling [`ServerHandle::drain`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Gracefully drains the server: stop accepting, shed the queue with
    /// explicit `overloaded` responses, let in-flight queries finish and
    /// flush their responses, sever idle connections, write the sidecar.
    /// Idempotent; every step is journaled.
    pub fn drain(&mut self) -> DrainReport {
        if self.drained {
            return DrainReport { shed: 0, stats: self.shared.snapshot(), journal: String::new() };
        }
        self.drained = true;
        let depth = obs::push_collector();
        obs::info!("dfs-server", "drain.begin");
        self.shared.draining.store(true, Ordering::Release);

        // 1. Stop accepting: the accept loop polls the draining flag.
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                obs::warn!("dfs-server", "accept loop panicked during drain");
            }
        }

        // 2. Close the queue; answer every shed request explicitly.
        let shed_jobs = self.shared.queue.close();
        let shed = shed_jobs.len();
        for job in shed_jobs {
            Stats::bump(&self.shared.stats.shed);
            let err = DfsError::Overloaded { queued: shed, capacity: self.shared.cfg.queue_depth };
            let _ = job.reply.send(Response::Error(WireError::new(
                job.spec.req_id,
                ErrorCode::Overloaded,
                format!("{err} (draining)"),
            )));
        }
        obs::counter("server.drain.shed", shed as u64);
        obs::info!("dfs-server", "queue.shed: {shed} queued requests answered overloaded");

        // 3. Workers finish their in-flight query, then see the closed
        //    queue and exit.
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                obs::warn!("dfs-server", "worker panicked during drain");
            }
        }
        obs::info!("dfs-server", "drain.inflight: workers idle, in-flight queries completed");

        // 4. Bounded wait for handlers to flush admitted responses.
        let flush_deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.pending.load(Ordering::Acquire) > 0 && Instant::now() < flush_deadline {
            thread::sleep(Duration::from_millis(2));
        }
        let unflushed = self.shared.pending.load(Ordering::Acquire);
        if unflushed > 0 {
            obs::warn!("dfs-server", "drain.flush: {unflushed} responses still unflushed at timeout");
        }

        // 5. Sever remaining (idle) connections so blocked readers exit.
        let conns: Vec<TcpStream> = self.shared.conns_lock().drain().map(|(_, s)| s).collect();
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handler_deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active_handlers.load(Ordering::Acquire) > 0
            && Instant::now() < handler_deadline
        {
            thread::sleep(Duration::from_millis(2));
        }

        // 6. Flush the stats sidecar atomically.
        let stats = self.shared.snapshot();
        if let Some(path) = &self.shared.cfg.sidecar {
            match write_sidecar(path, &stats) {
                Ok(()) => obs::info!("dfs-server", "sidecar.flush: {}", path.display()),
                Err(e) => obs::warn!("dfs-server", "sidecar.flush failed on {}: {e}", path.display()),
            }
        }
        obs::info!(
            "dfs-server",
            "drain.complete: served={} shed={} panicked={}",
            stats.served,
            stats.shed,
            stats.panicked
        );

        let journal = match obs::take_collector(depth) {
            Some(collector) => {
                let observer = RunObserver::new("dfs-server");
                observer.absorb_run(collector);
                observer.journal(true)
            }
            None => String::new(),
        };
        DrainReport { shed, stats, journal }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.drained {
            return;
        }
        // Abrupt shutdown: unblock everything, join nothing.
        self.shared.draining.store(true, Ordering::Release);
        for job in self.shared.queue.close() {
            let _ = job.reply.send(Response::Error(WireError::new(
                job.spec.req_id,
                ErrorCode::Overloaded,
                "server shutting down",
            )));
        }
        let conns: Vec<TcpStream> = self.shared.conns_lock().drain().map(|(_, s)| s).collect();
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// The stats sidecar: same atomic write discipline as the benchmark
/// checkpoint (tmp + rename), same tab-separated idiom. v2 appends the
/// sparse-encoded latency histograms; [`read_sidecar`] still accepts v1.
fn write_sidecar(path: &std::path::Path, stats: &ServerStats) -> io::Result<()> {
    let mut body = String::from("#dfs-server-stats\tv2\n");
    for (key, value) in [
        ("connections", stats.connections),
        ("served", stats.served),
        ("succeeded", stats.succeeded),
        ("shed", stats.shed),
        ("panicked", stats.panicked),
        ("deadline_exceeded", stats.deadline_exceeded),
        ("malformed", stats.malformed),
        ("ranking_computes", stats.ranking_computes),
        ("ranking_hits", stats.ranking_hits),
    ] {
        body.push_str(&format!("{key}\t{value}\n"));
    }
    body.push_str(&format!("latency_hist\t{}\n", stats.latency_hist));
    body.push_str(&format!("queue_hist\t{}\n", stats.queue_hist));
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// Parses a sidecar written by [`write_sidecar`] back into counters.
/// Accepts v1 (counters only) and v2 (counters + histograms).
pub fn read_sidecar(path: &std::path::Path) -> Result<ServerStats, DfsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| DfsError::Io { path: path.to_path_buf(), source })?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if header != "#dfs-server-stats\tv1" && header != "#dfs-server-stats\tv2" {
        return Err(DfsError::CacheCorrupt {
            path: path.to_path_buf(),
            reason: format!("bad sidecar header '{header}'"),
        });
    }
    let mut stats = ServerStats::default();
    for line in lines {
        let (key, value) = match line.split_once('\t') {
            Some(kv) => kv,
            None => continue,
        };
        // Histogram lines carry the sparse wire string, not a counter.
        match key {
            "latency_hist" | "queue_hist" => {
                dfs_obs::Histogram::decode_sparse(value).map_err(|reason| {
                    DfsError::CacheCorrupt {
                        path: path.to_path_buf(),
                        reason: format!("bad {key}: {reason}"),
                    }
                })?;
                if key == "latency_hist" {
                    stats.latency_hist = value.to_string();
                } else {
                    stats.queue_hist = value.to_string();
                }
                continue;
            }
            _ => {}
        }
        let value: u64 = value.parse().map_err(|_| DfsError::CacheCorrupt {
            path: path.to_path_buf(),
            reason: format!("non-numeric counter '{line}'"),
        })?;
        match key {
            "connections" => stats.connections = value,
            "served" => stats.served = value,
            "succeeded" => stats.succeeded = value,
            "shed" => stats.shed = value,
            "panicked" => stats.panicked = value,
            "deadline_exceeded" => stats.deadline_exceeded = value,
            "malformed" => stats.malformed = value,
            "ranking_computes" => stats.ranking_computes = value,
            "ranking_hits" => stats.ranking_hits = value,
            _ => {}
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Accept loop and connection handlers
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                Stats::bump(&shared.stats.connections);
                let shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name(format!("dfs-conn-{conn_id}"))
                    .spawn(move || handle_connection(&shared, stream, conn_id));
                if spawned.is_err() {
                    obs::warn!("dfs-server", "failed to spawn handler for connection {conn_id}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                obs::warn!("dfs-server", "accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Decrements a counter on drop, so panics cannot leak it.
struct CountGuard<'a>(&'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, conn_id: u64) {
    shared.active_handlers.fetch_add(1, Ordering::AcqRel);
    let _active = CountGuard(&shared.active_handlers);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        shared.conns_lock().insert(conn_id, clone);
    }

    // Per-connection unwind isolation: one buggy handler cannot take
    // down the daemon.
    let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(shared, &mut stream)));
    if outcome.is_err() {
        obs::warn!("dfs-server", "connection {conn_id} handler panicked; connection dropped");
    }
    shared.conns_lock().remove(&conn_id);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads frames until the peer closes, the connection idles out, or the
/// framing breaks.
fn serve_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    loop {
        let payload = match read_frame(stream) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                obs::debug!("dfs-server", "connection idle timeout; closing");
                return;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(e) => {
                // Protocol violation (bad version, oversized length,
                // checksum mismatch): framing is no longer trustworthy.
                // Answer once, then close.
                Stats::bump(&shared.stats.malformed);
                obs::counter("server.frame.malformed", 1);
                let err = DfsError::MalformedFrame { reason: e.to_string() };
                obs::warn!("dfs-server", "{err}");
                let resp =
                    Response::Error(WireError::new(0, ErrorCode::MalformedQuery, err.to_string()));
                let _ = write_response(stream, &resp, None);
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(reason) => {
                // Framing is intact — the payload just doesn't parse.
                // Answer and keep the connection.
                Stats::bump(&shared.stats.malformed);
                obs::counter("server.frame.malformed", 1);
                let err = DfsError::MalformedFrame { reason };
                obs::warn!("dfs-server", "{err}");
                let resp =
                    Response::Error(WireError::new(0, ErrorCode::MalformedQuery, err.to_string()));
                if write_response(stream, &resp, None).is_err() {
                    return;
                }
                continue;
            }
        };
        let (resp, fault, close) = match request {
            Request::Ping => (Response::Pong, None, false),
            Request::Stats => (Response::Stats(shared.snapshot()), None, false),
            Request::Shutdown => {
                shared.shutdown_requested.store(true, Ordering::Release);
                obs::info!("dfs-server", "shutdown requested by client");
                (Response::Bye, None, true)
            }
            Request::Query(spec) => {
                let fault = shared.chaos_lock().take(spec.req_id);
                (serve_query(shared, spec, fault), fault, false)
            }
        };
        match write_response(stream, &resp, fault) {
            Ok(false) => {
                if close {
                    return;
                }
            }
            // `true`: the chaos injector severed the stream mid-frame.
            Ok(true) | Err(_) => return,
        }
    }
}

/// Validates, admits, and executes one query, returning the response to
/// write. Never blocks unboundedly: admission sheds, execution is under a
/// watchdog, and the reply wait is capped past the watchdog deadline.
fn serve_query(
    shared: &Arc<Shared>,
    spec: dfs_proto::QuerySpec,
    fault: Option<ServerFaultKind>,
) -> Response {
    let received = Instant::now();
    if let Err(wire) = shared.engine.validate(&spec) {
        Stats::bump(&shared.stats.malformed);
        obs::counter("server.query.malformed", 1);
        return Response::Error(wire);
    }
    let (search_time, max_evals, deadline) = match admit(&shared.cfg, &spec) {
        Ok(quotas) => quotas,
        Err(wire) => return Response::Error(wire),
    };

    // The request's Budget starts here: queue wait spends it.
    let budget = Budget::new(deadline, max_evals);
    if let Some(ServerFaultKind::StallHandler(wait)) = fault {
        // The stall burns the admitted request's own deadline, so a stall
        // past it must surface as `deadline_exceeded`, never a hang.
        obs::warn!("dfs-server", "chaos: stalling handler {wait:?} (req {})", spec.req_id);
        thread::sleep(wait);
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        spec: spec.clone(),
        search_time,
        max_evals,
        deadline,
        budget,
        panic_in_cell: matches!(fault, Some(ServerFaultKind::PanicInCell)),
        reply: reply_tx,
    };
    shared.pending.fetch_add(1, Ordering::AcqRel);
    let _pending = CountGuard(&shared.pending);
    match shared.queue.try_push(job) {
        Err(PushError::Full { queued, capacity, .. }) => {
            Stats::bump(&shared.stats.shed);
            obs::counter("server.query.shed", 1);
            let err = DfsError::Overloaded { queued, capacity };
            obs::warn!("dfs-server", "{err} (req {})", spec.req_id);
            Response::Error(WireError::new(spec.req_id, ErrorCode::Overloaded, err.to_string()))
        }
        Err(PushError::Closed(_)) => {
            Stats::bump(&shared.stats.shed);
            obs::counter("server.query.shed", 1);
            Response::Error(WireError::new(
                spec.req_id,
                ErrorCode::Overloaded,
                "server is draining; retry against another instance",
            ))
        }
        Ok(()) => {
            // The worker always replies (shed, executed, panicked, or
            // timed out); the cap is pure insurance so a lost reply can
            // never wedge the handler.
            let wait_cap = deadline + shared.cfg.deadline_grace + Duration::from_secs(5);
            let resp = reply_rx.recv_timeout(wait_cap).unwrap_or_else(|_| {
                Response::Error(WireError::new(
                    spec.req_id,
                    ErrorCode::Internal,
                    "worker reply lost",
                ))
            });
            // Request latency for every admitted query: handler entry to
            // reply resolution — validation, queue wait, and execution.
            shared.stats.latency.record(received.elapsed().as_nanos() as u64);
            resp
        }
    }
}

/// Admission control: resolve effective quotas, rejecting over-quota
/// requests with a terminal `budget_exceeded`.
fn admit(
    cfg: &ServerConfig,
    spec: &dfs_proto::QuerySpec,
) -> Result<(Duration, usize, Duration), WireError> {
    let over = |msg: String| WireError::new(spec.req_id, ErrorCode::BudgetExceeded, msg);
    let search_time = if spec.time_ms == 0 {
        cfg.default_time
    } else {
        Duration::from_millis(spec.time_ms)
    };
    if search_time > cfg.quota_time {
        return Err(over(format!(
            "requested search time {search_time:?} exceeds the {:?} quota",
            cfg.quota_time
        )));
    }
    let max_evals = if spec.max_evals == 0 { cfg.default_evals } else { spec.max_evals as usize };
    if max_evals > cfg.quota_evals {
        return Err(over(format!(
            "requested {max_evals} evaluations exceed the {} quota",
            cfg.quota_evals
        )));
    }
    let deadline = spec
        .deadline_ms
        .map_or(search_time + cfg.deadline_grace, Duration::from_millis);
    let deadline_cap = cfg.quota_time + cfg.deadline_grace;
    if deadline > deadline_cap {
        return Err(over(format!(
            "requested deadline {deadline:?} exceeds the {deadline_cap:?} cap"
        )));
    }
    Ok((search_time, max_evals, deadline))
}

/// Writes a response frame, applying response-path chaos. Returns
/// `Ok(true)` when the injector severed the connection.
fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    fault: Option<ServerFaultKind>,
) -> Result<bool, FrameError> {
    let payload = resp.encode();
    let mut buf = encode_frame(&payload)?;
    match fault {
        Some(ServerFaultKind::CorruptFrame) => {
            // Flip one payload byte *after* the checksum was computed:
            // the client's frame layer must reject the frame.
            obs::warn!("dfs-server", "chaos: corrupting response frame");
            if let Some(byte) = buf.last_mut() {
                *byte ^= 0x01;
            }
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(false)
        }
        Some(ServerFaultKind::DropMidFrame) => {
            // Write half the frame, then vanish: the client must observe
            // a truncated read, never a hang.
            obs::warn!("dfs-server", "chaos: dropping connection mid-frame");
            let cut = HEADER_LEN + payload.len() / 2;
            stream.write_all(&buf[..cut])?;
            stream.flush()?;
            let _ = stream.shutdown(Shutdown::Both);
            Ok(true)
        }
        _ => {
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(false)
        }
    }
}

// ---------------------------------------------------------------------------
// Workers: guarded query execution with deadline propagation
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let resp = execute_job(shared, &job);
        if let Response::Result(result) = &resp {
            Stats::bump(&shared.stats.served);
            obs::counter("server.query.served", 1);
            if result.success {
                Stats::bump(&shared.stats.succeeded);
            }
        }
        // A vanished handler (client gone) is fine; the result is dropped.
        let _ = job.reply.send(resp);
    }
}

/// Runs one job under the watchdog. Mirrors the benchmark runner's
/// guarded-cell pattern: the query runs on a named thread with a
/// heartbeat installed; the worker waits with `recv_timeout` and converts
/// expiry into a `deadline_exceeded` error frame carrying the last
/// heartbeat phase.
fn execute_job(shared: &Arc<Shared>, job: &Job) -> Response {
    let req_id = job.spec.req_id;
    // The budget started at admission, so its elapsed time at pickup IS
    // the queue wait — recorded for every job, including ones the wait
    // already killed.
    shared.stats.queue_wait.record(job.budget.elapsed().as_nanos() as u64);
    // Queue wait already spent the whole deadline?
    if job.budget.exhausted() {
        Stats::bump(&shared.stats.deadline_exceeded);
        obs::counter("server.query.deadline", 1);
        let err = DfsError::DeadlineExceeded { deadline: job.deadline, phase: "queue".into() };
        obs::warn!("dfs-server", "{err} (req {req_id})");
        return Response::Error(
            WireError::new(req_id, ErrorCode::DeadlineExceeded, err.to_string()).with_phase("queue"),
        );
    }
    let remaining = job.deadline.saturating_sub(job.budget.elapsed());
    let heartbeat = Arc::new(obs::Heartbeat::new());
    let (cell_tx, cell_rx) = mpsc::channel();
    let cell = {
        let heartbeat = Arc::clone(&heartbeat);
        let shared = Arc::clone(shared);
        let spec = job.spec.clone();
        let search_time = job.search_time;
        let max_evals = job.max_evals;
        let panic_in_cell = job.panic_in_cell;
        thread::Builder::new().name(format!("dfs-cell-{req_id}")).spawn(move || {
            obs::install_heartbeat(heartbeat);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                shared.engine.run(&spec, search_time, max_evals, panic_in_cell)
            }));
            obs::clear_heartbeat();
            let _ = cell_tx.send(outcome);
        })
    };
    let cell = match cell {
        Ok(cell) => cell,
        Err(e) => {
            return Response::Error(WireError::new(
                req_id,
                ErrorCode::Internal,
                format!("failed to spawn query cell: {e}"),
            ));
        }
    };
    match cell_rx.recv_timeout(remaining) {
        Ok(Ok(Ok(result))) => {
            let _ = cell.join();
            Response::Result(result)
        }
        Ok(Ok(Err(wire))) => {
            let _ = cell.join();
            Response::Error(wire)
        }
        Ok(Err(panic_payload)) => {
            let _ = cell.join();
            Stats::bump(&shared.stats.panicked);
            obs::counter("server.query.panicked", 1);
            let payload = dfs_core::error::panic_payload_to_string(&*panic_payload);
            let err = DfsError::CellPanicked {
                scenario: job.spec.dataset.clone(),
                arm: job.spec.strategy.clone(),
                payload: payload.clone(),
            };
            obs::warn!("dfs-server", "{err} (req {req_id}); daemon unaffected");
            Response::Error(WireError::new(
                req_id,
                ErrorCode::Internal,
                format!("query cell panicked: {payload}"),
            ))
        }
        Err(_) => {
            // Watchdog fired. The cell thread keeps running detached (it
            // is budget-bounded and will unwind on its own); attribution
            // comes from its heartbeat, exactly like `CellTimedOut`.
            Stats::bump(&shared.stats.deadline_exceeded);
            obs::counter("server.query.deadline", 1);
            let phase = heartbeat.last();
            let err = DfsError::DeadlineExceeded { deadline: job.deadline, phase: phase.clone() };
            obs::warn!("dfs-server", "{err} (req {req_id})");
            Response::Error(
                WireError::new(req_id, ErrorCode::DeadlineExceeded, err.to_string())
                    .with_phase(phase),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_proto::QuerySpec;

    #[test]
    fn admission_rejects_over_quota_requests() {
        let cfg = ServerConfig::default();
        let mut spec = QuerySpec::example(1);
        spec.time_ms = cfg.quota_time.as_millis() as u64 + 1;
        let err = admit(&cfg, &spec).expect_err("over-quota time");
        assert_eq!(err.code, ErrorCode::BudgetExceeded);

        let mut spec = QuerySpec::example(2);
        spec.max_evals = cfg.quota_evals as u64 + 1;
        let err = admit(&cfg, &spec).expect_err("over-quota evals");
        assert_eq!(err.code, ErrorCode::BudgetExceeded);

        let mut spec = QuerySpec::example(3);
        spec.deadline_ms = Some((cfg.quota_time + cfg.deadline_grace).as_millis() as u64 + 1);
        let err = admit(&cfg, &spec).expect_err("over-cap deadline");
        assert_eq!(err.code, ErrorCode::BudgetExceeded);
    }

    #[test]
    fn admission_applies_defaults_and_client_deadline() {
        let cfg = ServerConfig::default();
        let spec = QuerySpec::example(1);
        let (time, evals, deadline) = admit(&cfg, &spec).expect("defaults admit");
        assert_eq!(time, cfg.default_time);
        assert_eq!(evals, cfg.default_evals);
        assert_eq!(deadline, cfg.default_time + cfg.deadline_grace);

        let mut spec = QuerySpec::example(2);
        spec.time_ms = 120;
        spec.max_evals = 40;
        spec.deadline_ms = Some(90);
        let (time, evals, deadline) = admit(&cfg, &spec).expect("explicit admit");
        assert_eq!(time, Duration::from_millis(120));
        assert_eq!(evals, 40);
        assert_eq!(deadline, Duration::from_millis(90), "client deadline propagates verbatim");
    }

    #[test]
    fn sidecar_roundtrips_atomically() {
        let dir = std::env::temp_dir().join("dfs-server-sidecar-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("stats.ckpt");
        let stats = ServerStats {
            connections: 4,
            served: 9,
            succeeded: 5,
            shed: 2,
            panicked: 1,
            deadline_exceeded: 3,
            malformed: 7,
            ranking_computes: 11,
            ranking_hits: 13,
            latency_hist: "2;3000000;21:1,22:1".into(),
            queue_hist: "1;500;9:1".into(),
        };
        write_sidecar(&path, &stats).expect("write");
        assert!(!path.with_extension("ckpt.tmp").exists(), "tmp file renamed away");
        let back = read_sidecar(&path).expect("read");
        assert_eq!(back, stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_accepts_v1_without_histograms() {
        let dir = std::env::temp_dir().join("dfs-server-sidecar-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("v1.ckpt");
        std::fs::write(&path, "#dfs-server-stats\tv1\nserved\t6\nshed\t2\n").expect("write");
        let back = read_sidecar(&path).expect("v1 reads");
        assert_eq!(back.served, 6);
        assert_eq!(back.shed, 2);
        assert_eq!(back.latency_hist, "");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_rejects_corrupt_histogram_line() {
        let dir = std::env::temp_dir().join("dfs-server-sidecar-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("badhist.ckpt");
        std::fs::write(&path, "#dfs-server-stats\tv2\nserved\t1\nlatency_hist\t1;1;99:1\n")
            .expect("write");
        assert!(matches!(read_sidecar(&path), Err(DfsError::CacheCorrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_rejects_bad_header() {
        let dir = std::env::temp_dir().join("dfs-server-sidecar-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbled.ckpt");
        std::fs::write(&path, "#something-else\nserved\t3\n").expect("write");
        assert!(matches!(read_sidecar(&path), Err(DfsError::CacheCorrupt { .. })));
        std::fs::remove_file(&path).ok();
    }
}
