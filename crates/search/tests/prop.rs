//! Property-based tests for the black-box optimizers.

use dfs_search::nsga2::{dominates, nsga2, Nsga2Config};
use dfs_search::sa::{simulated_annealing, SaConfig};
use dfs_search::tpe::{tpe_binary, tpe_integer, TpeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every optimizer stops exactly when the evaluator starts returning
    /// `None`, and never proposes the empty subset. (Plain `assert!` inside
    /// the closures: a panic fails the proptest case just as well.)
    #[test]
    fn optimizers_respect_budget_and_nonempty(
        d in 1usize..16,
        cap in 1usize..30,
        seed in 0u64..500,
    ) {
        // SA
        let mut calls = 0usize;
        let mut eval = |bits: &[bool]| -> Option<f64> {
            assert!(bits.iter().any(|&b| b), "empty subset proposed");
            calls += 1;
            if calls > cap {
                return None;
            }
            Some(bits.iter().filter(|&&b| b).count() as f64)
        };
        let cfg = SaConfig { max_iters: 200, stop_at: None, seed, ..Default::default() };
        let r = simulated_annealing(d, &mut eval, &cfg);
        prop_assert!(r.evaluations <= cap);

        // TPE binary
        let mut calls = 0usize;
        let mut eval = |bits: &[bool]| -> Option<f64> {
            assert!(bits.iter().any(|&b| b), "empty subset proposed");
            calls += 1;
            if calls > cap {
                return None;
            }
            Some(bits.iter().filter(|&&b| b).count() as f64)
        };
        let cfg = TpeConfig { max_iters: 200, stop_at: None, seed, ..Default::default() };
        let r = tpe_binary(d, &mut eval, &cfg);
        prop_assert!(r.evaluations <= cap);

        // NSGA-II
        let mut calls = 0usize;
        let mut eval = |bits: &[bool]| -> Option<Vec<f64>> {
            assert!(bits.iter().any(|&b| b), "empty subset proposed");
            calls += 1;
            if calls > cap {
                return None;
            }
            Some(vec![bits.iter().filter(|&&b| b).count() as f64])
        };
        let cfg = Nsga2Config { generations: 10, stop_at: None, seed, ..Default::default() };
        let r = nsga2(d, &mut eval, &cfg);
        prop_assert!(r.evaluations <= cap);
    }

    /// SA always returns the best score it has actually seen.
    #[test]
    fn reported_best_matches_observed_minimum(d in 2usize..12, seed in 0u64..300) {
        let mut seen: Vec<f64> = Vec::new();
        let mut eval = |bits: &[bool]| -> Option<f64> {
            let score = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| if b { (i as f64 - 3.0).abs() } else { 0.5 })
                .sum();
            seen.push(score);
            Some(score)
        };
        let cfg = SaConfig { max_iters: 40, stop_at: None, seed, ..Default::default() };
        let r = simulated_annealing(d, &mut eval, &cfg);
        let min_seen = seen.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(r.best_score, min_seen);
    }

    /// Integer TPE never revisits a value and stays in range.
    #[test]
    fn tpe_integer_no_repeats_in_range(lo in 0usize..5, span in 1usize..20, seed in 0u64..300) {
        let hi = lo + span;
        let mut visited = Vec::new();
        let mut eval = |k: usize| {
            visited.push(k);
            Some((k as f64 - 7.0).abs())
        };
        let cfg = TpeConfig { max_iters: 60, stop_at: None, seed, ..Default::default() };
        let _ = tpe_integer(lo, hi, &mut eval, &cfg);
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), visited.len(), "repeat evaluation: {:?}", visited);
        for &k in &visited {
            prop_assert!((lo..=hi).contains(&k));
        }
    }

    /// NSGA-II's reported front is mutually non-dominated for arbitrary
    /// two-objective landscapes.
    #[test]
    fn nsga2_front_is_non_dominated(d in 2usize..10, seed in 0u64..200, w in 0.1..3.0f64) {
        let mut eval = |bits: &[bool]| -> Option<Vec<f64>> {
            let ones = bits.iter().filter(|&&b| b).count() as f64;
            let alt = bits
                .iter()
                .enumerate()
                .filter(|(i, &b)| b && i % 2 == 0)
                .count() as f64;
            Some(vec![ones, w * (d as f64 - alt)])
        };
        let cfg = Nsga2Config { generations: 6, population: 12, stop_at: None, seed, ..Default::default() };
        let r = nsga2(d, &mut eval, &cfg);
        for a in &r.front {
            for b in &r.front {
                prop_assert!(!dominates(&a.objectives, &b.objectives));
            }
        }
    }

    /// Early stop: once a score at or below `stop_at` is seen, no further
    /// evaluations happen.
    #[test]
    fn early_stop_is_immediate(d in 2usize..10, seed in 0u64..200, hit_at in 1usize..10) {
        let mut calls = 0usize;
        let mut eval = |_bits: &[bool]| -> Option<f64> {
            calls += 1;
            Some(if calls >= hit_at { 0.0 } else { 1.0 })
        };
        let cfg = SaConfig { max_iters: 500, stop_at: Some(0.0), seed, ..Default::default() };
        let r = simulated_annealing(d, &mut eval, &cfg);
        prop_assert!(r.reached_target);
        prop_assert_eq!(r.evaluations, hit_at);
    }
}
