//! Simulated annealing over binary decision vectors (the paper's SA(NR)).
//!
//! Metropolis acceptance (Metropolis et al., 1953) with a geometric cooling
//! schedule. Neighbours flip one random bit (occasionally two, to escape
//! single-bit local minima). Scores are *minimized*.

use crate::{hit_target, SearchResult};
use dfs_linalg::rng::rng_from_seed;
use rand::Rng;

/// Simulated-annealing configuration.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Maximum iterations (each costs one evaluation).
    pub max_iters: usize,
    /// Initial temperature (score scale: constraint distances are ≤ ~4).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Probability that a freshly initialized bit is set.
    pub init_density: f64,
    /// Early-stop score (for DFS: `Some(0.0)` = all constraints satisfied).
    pub stop_at: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            max_iters: 300,
            initial_temperature: 0.25,
            cooling: 0.985,
            init_density: 0.5,
            stop_at: Some(0.0),
            seed: 0,
        }
    }
}

/// Minimizes `eval` over `{0,1}^d` by simulated annealing.
///
/// `eval` returns `None` when the budget is exhausted; the best-so-far
/// result is returned in that case.
pub fn simulated_annealing(
    d: usize,
    eval: &mut dyn FnMut(&[bool]) -> Option<f64>,
    cfg: &SaConfig,
) -> SearchResult {
    let mut result = SearchResult::empty();
    if d == 0 {
        return result;
    }
    let mut rng = rng_from_seed(cfg.seed);

    let mut current: Vec<bool> = (0..d).map(|_| rng.random::<f64>() < cfg.init_density).collect();
    ensure_nonempty(&mut current, &mut rng);
    let Some(mut current_score) = eval(&current) else {
        return result;
    };
    result.observe(&current, current_score);
    if hit_target(current_score, cfg.stop_at) {
        result.reached_target = true;
        return result;
    }

    let mut temperature = cfg.initial_temperature;
    for _ in 1..cfg.max_iters {
        let _iter_span = dfs_obs::span("sa.iter");
        let mut candidate = current.clone();
        let flips = if rng.random::<f64>() < 0.2 { 2 } else { 1 };
        for _ in 0..flips {
            let j = rng.random_range(0..d);
            candidate[j] = !candidate[j];
        }
        ensure_nonempty(&mut candidate, &mut rng);

        let Some(score) = eval(&candidate) else {
            break;
        };
        result.observe(&candidate, score);
        if hit_target(score, cfg.stop_at) {
            result.reached_target = true;
            break;
        }

        let accept = if score <= current_score {
            true
        } else {
            let p = ((current_score - score) / temperature.max(1e-9)).exp();
            rng.random::<f64>() < p
        };
        if accept {
            current = candidate;
            current_score = score;
        }
        temperature *= cfg.cooling;
    }
    result
}

/// Feature subsets must be non-empty: a zero vector flips one random bit on.
fn ensure_nonempty(bits: &mut [bool], rng: &mut rand::rngs::StdRng) {
    if !bits.iter().any(|&b| b) {
        let j = rng.random_range(0..bits.len());
        bits[j] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hamming distance to a fixed target pattern.
    fn hamming_objective(target: Vec<bool>) -> impl FnMut(&[bool]) -> Option<f64> {
        move |bits: &[bool]| {
            Some(bits.iter().zip(&target).filter(|(a, b)| a != b).count() as f64)
        }
    }

    #[test]
    fn finds_target_pattern() {
        let target: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        let mut eval = hamming_objective(target.clone());
        let cfg = SaConfig { max_iters: 3000, seed: 1, ..Default::default() };
        let r = simulated_annealing(10, &mut eval, &cfg);
        assert!(r.reached_target, "best score {}", r.best_score);
        assert_eq!(r.best_bits, target);
    }

    #[test]
    fn stops_early_at_target() {
        // Constant objective 0 -> should stop after the first evaluation.
        let mut eval = |_: &[bool]| Some(0.0);
        let r = simulated_annealing(6, &mut eval, &SaConfig::default());
        assert!(r.reached_target);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn respects_budget_exhaustion() {
        let mut calls = 0;
        let mut eval = |bits: &[bool]| {
            calls += 1;
            if calls > 5 {
                None
            } else {
                Some(bits.iter().filter(|&&b| b).count() as f64 + 1.0)
            }
        };
        let cfg = SaConfig { stop_at: Some(0.0), max_iters: 100, ..Default::default() };
        let r = simulated_annealing(8, &mut eval, &cfg);
        assert_eq!(r.evaluations, 5);
        assert!(!r.reached_target);
        assert!(!r.best_bits.is_empty());
    }

    #[test]
    fn never_proposes_empty_subsets() {
        let mut eval = |bits: &[bool]| {
            assert!(bits.iter().any(|&b| b), "empty subset proposed");
            Some(bits.iter().filter(|&&b| b).count() as f64)
        };
        let cfg = SaConfig { max_iters: 200, stop_at: None, seed: 3, ..Default::default() };
        let r = simulated_annealing(5, &mut eval, &cfg);
        // Minimum reachable non-empty subset has one feature.
        assert_eq!(r.best_score, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let target: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let run = |seed| {
            let mut eval = hamming_objective(target.clone());
            simulated_annealing(12, &mut eval, &SaConfig { seed, max_iters: 50, ..Default::default() })
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.best_bits, b.best_bits);
        assert_eq!(a.best_score, b.best_score);
    }

    #[test]
    fn zero_dimensions_is_graceful() {
        let mut eval = |_: &[bool]| Some(0.0);
        let r = simulated_annealing(0, &mut eval, &SaConfig::default());
        assert_eq!(r.evaluations, 0);
    }
}
