//! NSGA-II multi-objective evolutionary search (Deb et al.).
//!
//! The paper's NSGA-II(NR) strategy treats *each constraint as one
//! objective* (§ 4.2): e.g. "accuracy > 80% and EO > 90%" becomes a
//! two-objective minimization of the per-constraint shortfalls. This module
//! implements the canonical algorithm on binary genomes: fast non-dominated
//! sorting, crowding distance, binary tournament selection, uniform
//! crossover and bit-flip mutation. Population size follows the paper's
//! configuration (30, after Xue et al.).

use crate::hit_target;
use dfs_linalg::rng::rng_from_seed;
use rand::rngs::StdRng;
use rand::Rng;

/// NSGA-II configuration.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size (paper: 30).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-genome crossover probability.
    pub crossover_prob: f64,
    /// Per-bit mutation probability multiplier (`mutation_rate / d`).
    pub mutation_rate: f64,
    /// Early-stop: a genome whose objectives *all* reach this value ends the
    /// run (for DFS: all shortfalls 0 = every constraint satisfied).
    pub stop_at: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Genomes submitted per batch-evaluation call (see [`nsga2_batch`]).
    /// The early-stop check runs at chunk boundaries, so a smaller chunk
    /// stops sooner while a larger one exposes more parallelism. Chunk
    /// boundaries are fixed by this config — never by thread count — so
    /// results are identical at any parallelism level.
    pub eval_chunk: usize,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population: 30,
            generations: 40,
            crossover_prob: 0.9,
            mutation_rate: 1.0,
            stop_at: Some(0.0),
            seed: 0,
            eval_chunk: 8,
        }
    }
}

/// One evaluated individual.
#[derive(Debug, Clone)]
pub struct Individual {
    /// Binary genome (feature-decision vector).
    pub bits: Vec<bool>,
    /// Objective vector (minimized component-wise).
    pub objectives: Vec<f64>,
}

/// Outcome of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// First (best) non-dominated front of the final population.
    pub front: Vec<Individual>,
    /// The individual minimizing the *sum* of objectives — DFS's pick.
    pub best: Option<Individual>,
    /// Evaluations performed.
    pub evaluations: usize,
    /// `true` when an all-objectives-at-target genome was found.
    pub reached_target: bool,
}

/// Runs NSGA-II, minimizing each component of the objective vector returned
/// by `eval`. `eval` returns `None` once the budget is exhausted.
///
/// Serial adapter over [`nsga2_batch`]: genomes are still evaluated one at
/// a time, in order, stopping at the first `None`. Early stopping happens
/// at [`Nsga2Config::eval_chunk`] boundaries (identical to the batch path,
/// so both entry points produce the same result for the same config).
pub fn nsga2(
    d: usize,
    eval: &mut dyn FnMut(&[bool]) -> Option<Vec<f64>>,
    cfg: &Nsga2Config,
) -> Nsga2Result {
    let mut done = false;
    let mut batch = |genomes: &[Vec<bool>]| -> Vec<Option<Vec<f64>>> {
        genomes
            .iter()
            .map(|g| {
                if done {
                    return None;
                }
                let out = eval(g);
                if out.is_none() {
                    done = true;
                }
                out
            })
            .collect()
    };
    nsga2_batch(d, &mut batch, cfg)
}

/// Runs NSGA-II with whole-chunk genome evaluation.
///
/// Instead of one genome at a time, the evaluator receives up to
/// [`Nsga2Config::eval_chunk`] genomes per call and returns one
/// `Option<Vec<f64>>` per genome — `None` meaning "budget exhausted, not
/// evaluated". Entries after the first `None` are discarded (the budget is
/// spent), and a short return is padded with `None`. This is the hook the
/// evaluation engine uses to fan a chunk out over the executor while
/// keeping budget admission sequential.
///
/// **Determinism.** Genome generation draws from a single sequential RNG
/// and never interleaves with evaluation, so the genome stream is
/// independent of how (or how fast) chunks are evaluated. Results are
/// absorbed in submission order and the early-stop check runs at chunk
/// boundaries fixed by the config, making the outcome bit-identical at
/// any thread count.
pub fn nsga2_batch(
    d: usize,
    eval_batch: &mut dyn FnMut(&[Vec<bool>]) -> Vec<Option<Vec<f64>>>,
    cfg: &Nsga2Config,
) -> Nsga2Result {
    let mut result = Nsga2Result { front: Vec::new(), best: None, evaluations: 0, reached_target: false };
    if d == 0 || cfg.population == 0 {
        return result;
    }
    let mut rng = rng_from_seed(cfg.seed);
    let chunk = cfg.eval_chunk.max(1);
    let mut budget_hit = false;

    // Evaluates one chunk of genomes and folds the results, in submission
    // order, into `result`; returns the evaluated individuals.
    let mut absorb = |genomes: Vec<Vec<bool>>,
                      result: &mut Nsga2Result,
                      budget_hit: &mut bool|
     -> Vec<Individual> {
        let outs = eval_batch(&genomes);
        let mut inds = Vec::with_capacity(genomes.len());
        for (i, bits) in genomes.into_iter().enumerate() {
            match outs.get(i).cloned().flatten() {
                Some(objectives) => {
                    result.evaluations += 1;
                    let ind = Individual { bits, objectives };
                    let better = match &result.best {
                        None => true,
                        Some(b) => sum(&ind.objectives) < sum(&b.objectives),
                    };
                    if better {
                        result.best = Some(ind.clone());
                    }
                    if ind.objectives.iter().all(|&o| hit_target(o, cfg.stop_at)) {
                        result.reached_target = true;
                    }
                    inds.push(ind);
                }
                None => {
                    *budget_hit = true;
                    break;
                }
            }
        }
        inds
    };

    // Initial population, chunk by chunk.
    let mut population: Vec<Individual> = Vec::with_capacity(cfg.population);
    while population.len() < cfg.population && !budget_hit && !result.reached_target {
        let want = chunk.min(cfg.population - population.len());
        let genomes: Vec<Vec<bool>> = (0..want).map(|_| random_nonempty(d, &mut rng)).collect();
        population.extend(absorb(genomes, &mut result, &mut budget_hit));
    }

    'gens: for _ in 0..cfg.generations {
        let _gen_span = dfs_obs::span("nsga2.gen");
        if result.reached_target || budget_hit || population.is_empty() {
            break;
        }
        let (ranks, crowding) = rank_and_crowd(&population);
        // Offspring via binary tournament + uniform crossover + mutation.
        let mut offspring: Vec<Individual> = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population {
            let want = chunk.min(cfg.population - offspring.len());
            let genomes: Vec<Vec<bool>> = (0..want)
                .map(|_| {
                    let p1 = tournament(&population, &ranks, &crowding, &mut rng);
                    let p2 = tournament(&population, &ranks, &crowding, &mut rng);
                    let mut child = if rng.random::<f64>() < cfg.crossover_prob {
                        uniform_crossover(&population[p1].bits, &population[p2].bits, &mut rng)
                    } else {
                        population[p1].bits.clone()
                    };
                    mutate(&mut child, cfg.mutation_rate, &mut rng);
                    if !child.iter().any(|&b| b) {
                        let j = rng.random_range(0..d);
                        child[j] = true;
                    }
                    child
                })
                .collect();
            offspring.extend(absorb(genomes, &mut result, &mut budget_hit));
            if result.reached_target {
                // The winning genome is already in `result.best`; the front
                // reports the parent population, as in the serial flow.
                break 'gens;
            }
            if budget_hit {
                break;
            }
        }
        // Environmental selection over parents + offspring.
        population.extend(offspring);
        population = select_survivors(population, cfg.population);
    }

    // Report the first front of whatever population we ended with.
    if !population.is_empty() {
        let (ranks, _) = rank_and_crowd(&population);
        result.front = population
            .into_iter()
            .zip(&ranks)
            .filter(|(_, &r)| r == 0)
            .map(|(ind, _)| ind)
            .collect();
    }
    result
}

fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

fn random_nonempty(d: usize, rng: &mut StdRng) -> Vec<bool> {
    loop {
        let bits: Vec<bool> = (0..d).map(|_| rng.random::<bool>()).collect();
        if bits.iter().any(|&b| b) {
            return bits;
        }
    }
}

fn uniform_crossover(a: &[bool], b: &[bool], rng: &mut StdRng) -> Vec<bool> {
    a.iter().zip(b).map(|(&x, &y)| if rng.random::<bool>() { x } else { y }).collect()
}

fn mutate(bits: &mut [bool], rate: f64, rng: &mut StdRng) {
    let p = rate / bits.len().max(1) as f64;
    for b in bits.iter_mut() {
        if rng.random::<f64>() < p {
            *b = !*b;
        }
    }
}

/// `a` dominates `b` iff it is no worse everywhere and better somewhere.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sorting + crowding distance.
fn rank_and_crowd(pop: &[Individual]) -> (Vec<usize>, Vec<f64>) {
    let n = pop.len();
    let mut ranks = vec![usize::MAX; n];
    let mut dominated_by: Vec<usize> = vec![0; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&pop[i].objectives, &pop[j].objectives) {
                dominates_list[i].push(j);
            } else if dominates(&pop[j].objectives, &pop[i].objectives) {
                dominated_by[i] += 1;
            }
        }
    }
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            ranks[i] = rank;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        rank += 1;
    }

    // Crowding distance per front.
    let mut crowding = vec![0.0f64; n];
    let n_obj = pop.first().map(|p| p.objectives.len()).unwrap_or(0);
    for r in 0..rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == r).collect();
        for m in 0..n_obj {
            let mut sorted = members.clone();
            // NaN scores never reach the population (they are mapped to
            // +inf at measurement), so Equal is an unreachable fallback,
            // not a behavior change.
            sorted.sort_by(|&a, &b| {
                pop[a].objectives[m]
                    .partial_cmp(&pop[b].objectives[m])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if sorted.len() < 3 {
                for &i in &sorted {
                    crowding[i] = f64::INFINITY;
                }
                continue;
            }
            let (&first, &last) = match (sorted.first(), sorted.last()) {
                (Some(first), Some(last)) => (first, last),
                _ => continue, // len >= 3 above; unreachable
            };
            let lo = pop[first].objectives[m];
            let hi = pop[last].objectives[m];
            crowding[first] = f64::INFINITY;
            crowding[last] = f64::INFINITY;
            let range = (hi - lo).max(dfs_linalg::EPS);
            for w in sorted.windows(3) {
                crowding[w[1]] += (pop[w[2]].objectives[m] - pop[w[0]].objectives[m]) / range;
            }
        }
    }
    (ranks, crowding)
}

fn tournament(pop: &[Individual], ranks: &[usize], crowding: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.random_range(0..pop.len());
    let b = rng.random_range(0..pop.len());
    if ranks[a] < ranks[b] || (ranks[a] == ranks[b] && crowding[a] > crowding[b]) {
        a
    } else {
        b
    }
}

/// Keeps the best `target` individuals by (rank, crowding).
fn select_survivors(pop: Vec<Individual>, target: usize) -> Vec<Individual> {
    let (ranks, crowding) = rank_and_crowd(&pop);
    let mut order: Vec<usize> = (0..pop.len()).collect();
    order.sort_by(|&a, &b| {
        ranks[a].cmp(&ranks[b]).then(
            // Crowding is a sum of finite ratios or +inf — never NaN.
            crowding[b].partial_cmp(&crowding[a]).unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    order.truncate(target);
    let keep: std::collections::HashSet<usize> = order.into_iter().collect();
    pop.into_iter().enumerate().filter(|(i, _)| keep.contains(i)).map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(!dominates(&[2.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[0.0, 2.0], &[2.0, 0.0]));
    }

    /// Two conflicting objectives: #selected bits vs Hamming distance to an
    /// 8-hot pattern. The trade-off front must span both extremes.
    fn conflicting_eval(target: Vec<bool>) -> impl FnMut(&[bool]) -> Option<Vec<f64>> {
        move |bits: &[bool]| {
            let ones = bits.iter().filter(|&&b| b).count() as f64;
            let ham = bits.iter().zip(&target).filter(|(a, b)| a != b).count() as f64;
            Some(vec![ones, ham])
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let target: Vec<bool> = (0..12).map(|i| i < 8).collect();
        let mut eval = conflicting_eval(target);
        let cfg = Nsga2Config { generations: 15, stop_at: None, seed: 1, ..Default::default() };
        let r = nsga2(12, &mut eval, &cfg);
        assert!(!r.front.is_empty());
        for a in &r.front {
            for b in &r.front {
                assert!(!dominates(&a.objectives, &b.objectives), "front contains dominated points");
            }
        }
    }

    #[test]
    fn single_objective_convergence() {
        let target: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let t2 = target.clone();
        let mut eval =
            move |bits: &[bool]| Some(vec![bits.iter().zip(&t2).filter(|(a, b)| a != b).count() as f64]);
        let cfg = Nsga2Config { generations: 60, seed: 2, ..Default::default() };
        let r = nsga2(10, &mut eval, &cfg);
        assert!(r.reached_target, "best {:?}", r.best.as_ref().map(|b| &b.objectives));
        assert_eq!(r.best.expect("has best").bits, target);
    }

    #[test]
    fn stops_when_all_objectives_hit_target() {
        let mut eval = |_: &[bool]| Some(vec![0.0, 0.0]);
        let r = nsga2(6, &mut eval, &Nsga2Config::default());
        assert!(r.reached_target);
        // Early stop happens at chunk granularity: one full eval_chunk (8)
        // is evaluated before the target check.
        assert_eq!(r.evaluations, Nsga2Config::default().eval_chunk);

        let cfg = Nsga2Config { eval_chunk: 1, ..Default::default() };
        let r1 = nsga2(6, &mut eval, &cfg);
        assert!(r1.reached_target);
        assert_eq!(r1.evaluations, 1, "chunk size 1 restores per-genome stopping");
    }

    #[test]
    fn batch_and_serial_entry_points_agree() {
        let target: Vec<bool> = (0..10).map(|i| i < 4).collect();
        let serial = {
            let mut eval = conflicting_eval(target.clone());
            let cfg = Nsga2Config { generations: 6, stop_at: None, seed: 3, ..Default::default() };
            nsga2(10, &mut eval, &cfg)
        };
        let batched = {
            let mut eval = conflicting_eval(target);
            let mut batch = |genomes: &[Vec<bool>]| -> Vec<Option<Vec<f64>>> {
                genomes.iter().map(|g| eval(g)).collect()
            };
            let cfg = Nsga2Config { generations: 6, stop_at: None, seed: 3, ..Default::default() };
            nsga2_batch(10, &mut batch, &cfg)
        };
        assert_eq!(serial.evaluations, batched.evaluations);
        assert_eq!(
            serial.best.as_ref().map(|b| &b.bits),
            batched.best.as_ref().map(|b| &b.bits)
        );
        assert_eq!(serial.front.len(), batched.front.len());
    }

    #[test]
    fn respects_budget() {
        let mut calls = 0;
        let mut eval = |_: &[bool]| {
            calls += 1;
            if calls > 10 {
                None
            } else {
                Some(vec![1.0, 1.0])
            }
        };
        let r = nsga2(6, &mut eval, &Nsga2Config::default());
        assert_eq!(r.evaluations, 10);
        assert!(!r.reached_target);
        assert!(r.best.is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let target: Vec<bool> = (0..8).map(|i| i < 3).collect();
            let mut eval = conflicting_eval(target);
            let cfg =
                Nsga2Config { generations: 8, stop_at: None, seed, ..Default::default() };
            let r = nsga2(8, &mut eval, &cfg);
            r.best.map(|b| b.bits)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_dims_is_graceful() {
        let mut eval = |_: &[bool]| Some(vec![0.0]);
        let r = nsga2(0, &mut eval, &Nsga2Config::default());
        assert_eq!(r.evaluations, 0);
        assert!(r.front.is_empty());
    }
}
