//! Generic black-box search algorithms used by the FS strategies.
//!
//! The paper reduces feature selection to optimizing a binary decision
//! vector `b ∈ {0,1}^N` (bit `j` = keep feature `j`) or a top-`k` cutoff
//! over a precomputed ranking. Three optimizer families act on those spaces
//! (§ 4.2):
//!
//! - [`sa`] — simulated annealing (Metropolis acceptance), the paper's
//!   SA(NR);
//! - [`tpe`] — the tree-structured Parzen estimator of Bergstra et al.,
//!   used both on binary vectors (TPE(NR)) and on the top-`k` integer for
//!   every ranking-based strategy (TPE(ranking));
//! - [`nsga2`] — NSGA-II multi-objective evolutionary search (one objective
//!   per constraint), the paper's NSGA-II(NR).
//!
//! Optimizers talk to the problem through a closure
//! `FnMut(&[bool]) -> Option<f64>` returning the score to *minimize*, or
//! `None` once the budget is exhausted (the [`Budget`] type tracks wall
//! clock and evaluation counts). They stop early when the score reaches
//! `stop_at` — for DFS that is distance 0, i.e. all constraints satisfied.

pub mod nsga2;
pub mod sa;
pub mod tpe;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Time source for a [`Budget`].
///
/// Production budgets read the real wall clock; tests inject a
/// [`ManualClock`] so deadline expiry can be exercised deterministically
/// (no `thread::sleep`, no flakes under load).
#[derive(Debug, Clone)]
pub enum Clock {
    /// The real wall clock, anchored at budget start.
    Real(Instant),
    /// A hand-advanced clock: elapsed nanoseconds in a shared atomic.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    fn elapsed(&self) -> Duration {
        match self {
            Clock::Real(start) => start.elapsed(),
            Clock::Manual(ns) => Duration::from_nanos(ns.load(Ordering::Acquire)),
        }
    }
}

/// A hand-advanced time source for deterministic budget tests.
///
/// Clones share the same underlying clock; [`ManualClock::clock`] hands a
/// [`Clock`] to [`Budget::with_clock`].
#[derive(Debug, Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock starting at zero elapsed time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        self.0.fetch_add(by.as_nanos() as u64, Ordering::AcqRel);
    }

    /// A [`Clock`] view sharing this clock's state.
    pub fn clock(&self) -> Clock {
        Clock::Manual(Arc::clone(&self.0))
    }
}

/// A combined wall-clock + evaluation-count budget.
///
/// Wall clock enforces the paper's mandatory Max Search Time constraint;
/// the evaluation cap makes tests and benchmarks deterministic. The type
/// is `Sync` (atomic eval counter), so deadline checks may run inside
/// parallel regions of the executor.
#[derive(Debug)]
pub struct Budget {
    clock: Clock,
    limit: Duration,
    max_evals: usize,
    evals: AtomicUsize,
}

impl Budget {
    /// Starts a budget with a wall-clock limit and an evaluation cap.
    pub fn new(limit: Duration, max_evals: usize) -> Self {
        Self::with_clock(limit, max_evals, Clock::Real(Instant::now()))
    }

    /// Starts a budget reading time from an explicit [`Clock`].
    pub fn with_clock(limit: Duration, max_evals: usize, clock: Clock) -> Self {
        Self { clock, limit, max_evals, evals: AtomicUsize::new(0) }
    }

    /// Starts a wall-clock-only budget.
    pub fn with_time(limit: Duration) -> Self {
        Self::new(limit, usize::MAX)
    }

    /// Starts a budget ending at an absolute deadline (shared across
    /// several searches, e.g. strategy switching under one scenario clock).
    /// A deadline already in the past yields an immediately exhausted
    /// budget rather than a panic.
    pub fn until(deadline: Instant, max_evals: usize) -> Self {
        let now = Instant::now();
        Self::until_with_clock(deadline, now, max_evals, Clock::Real(now))
    }

    /// Deadline budget reading time from an explicit [`Clock`], with the
    /// deadline resolved against an explicit `now`. `until` delegates here
    /// anchored at a single wall-clock read; tests inject a [`ManualClock`]
    /// so deadline expiry is exercised without touching `Instant::now()`.
    pub fn until_with_clock(
        deadline: Instant,
        now: Instant,
        max_evals: usize,
        clock: Clock,
    ) -> Self {
        Self::with_clock(deadline.saturating_duration_since(now), max_evals, clock)
    }

    /// `true` once either limit is hit.
    pub fn exhausted(&self) -> bool {
        self.evals.load(Ordering::Acquire) >= self.max_evals || self.clock.elapsed() >= self.limit
    }

    /// Registers one evaluation; returns `false` when the budget is already
    /// exhausted (the evaluation should then not run). Exact under
    /// concurrency: the eval cap can never be overshot.
    pub fn try_consume(&self) -> bool {
        if self.clock.elapsed() >= self.limit {
            return false;
        }
        self.evals
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |e| {
                if e >= self.max_evals {
                    None
                } else {
                    Some(e + 1)
                }
            })
            .is_ok()
    }

    /// Evaluations consumed so far.
    pub fn evals_used(&self) -> usize {
        self.evals.load(Ordering::Acquire)
    }

    /// Elapsed wall-clock time.
    pub fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }
}

/// Outcome of a single-objective search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best decision vector found (empty when nothing was evaluated).
    pub best_bits: Vec<bool>,
    /// Its score.
    pub best_score: f64,
    /// Number of evaluations performed by this search.
    pub evaluations: usize,
    /// `true` when the search stopped because `stop_at` was reached.
    pub reached_target: bool,
}

impl SearchResult {
    pub(crate) fn empty() -> Self {
        Self { best_bits: Vec::new(), best_score: f64::INFINITY, evaluations: 0, reached_target: false }
    }

    pub(crate) fn observe(&mut self, bits: &[bool], score: f64) {
        self.evaluations += 1;
        let score = sanitize_score(score);
        if score < self.best_score {
            self.best_score = score;
            self.best_bits = bits.to_vec();
        }
    }
}

/// Maps a NaN score to `+∞` so it orders as worst-possible instead of
/// silently losing every comparison (a degenerate fold metric must look
/// like a terrible candidate, not vanish). Observable: bumps the
/// `search.nan_score` counter and leaves a journal line.
pub(crate) fn sanitize_score(score: f64) -> f64 {
    if score.is_nan() {
        dfs_obs::counter("search.nan_score", 1);
        dfs_obs::warn!("dfs-search", "NaN score observed; treating as +inf");
        f64::INFINITY
    } else {
        score
    }
}

/// Returns `true` when `score` has met the early-stop target. NaN never
/// hits a target — it ranks as `+∞` (see [`sanitize_score`]), and `+∞`
/// fails any threshold.
pub(crate) fn hit_target(score: f64, stop_at: Option<f64>) -> bool {
    !score.is_nan() && stop_at.is_some_and(|t| score <= t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_counts_evaluations() {
        let b = Budget::new(Duration::from_secs(60), 3);
        assert!(b.try_consume());
        assert!(b.try_consume());
        assert!(b.try_consume());
        assert!(!b.try_consume(), "4th eval must be denied");
        assert!(b.exhausted());
        assert_eq!(b.evals_used(), 3);
    }

    #[test]
    fn budget_expires_on_wall_clock() {
        let clock = ManualClock::new();
        let b = Budget::with_clock(Duration::from_millis(1), usize::MAX, clock.clock());
        assert!(!b.exhausted(), "fresh budget must admit evaluations");
        assert!(b.try_consume());
        clock.advance(Duration::from_millis(2));
        assert!(b.exhausted());
        assert!(!b.try_consume());
        assert_eq!(b.evals_used(), 1);
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let clock = ManualClock::new();
        let b = Budget::with_clock(Duration::from_secs(1), usize::MAX, clock.clock());
        let clone = clock.clone();
        clone.advance(Duration::from_secs(2));
        assert!(b.exhausted(), "advancing any clone must expire the budget");
        assert_eq!(b.elapsed(), Duration::from_secs(2));
    }

    #[test]
    fn zero_wall_clock_budget_is_exhausted_before_the_first_evaluation() {
        let b = Budget::new(Duration::ZERO, usize::MAX);
        assert!(b.exhausted());
        assert!(!b.try_consume(), "no evaluation may run on a zero time budget");
        assert_eq!(b.evals_used(), 0);
    }

    #[test]
    fn zero_eval_cap_is_exhausted_before_the_first_evaluation() {
        let b = Budget::new(Duration::from_secs(60), 0);
        assert!(b.exhausted());
        assert!(!b.try_consume(), "no evaluation may run on a zero eval cap");
        assert_eq!(b.evals_used(), 0);
    }

    #[test]
    fn elapsed_deadline_is_exhausted_before_the_first_evaluation() {
        // `now` is an arbitrary anchor: only the deadline-vs-now difference
        // matters, and the injected clock controls everything after that.
        let now = Instant::now();
        let past = now.checked_sub(Duration::from_secs(5)).unwrap_or(now);
        let clock = ManualClock::new();
        let b = Budget::until_with_clock(past, now, usize::MAX, clock.clock());
        assert!(b.exhausted());
        assert!(!b.try_consume());
        assert_eq!(b.evals_used(), 0);
    }

    #[test]
    fn future_deadline_budget_admits_evaluations() {
        let now = Instant::now();
        let clock = ManualClock::new();
        let b = Budget::until_with_clock(now + Duration::from_secs(60), now, 2, clock.clock());
        assert!(!b.exhausted());
        assert!(b.try_consume());
        assert!(b.try_consume());
        assert!(!b.try_consume(), "eval cap still applies to deadline budgets");
    }

    #[test]
    fn deadline_budget_expires_on_the_injected_clock() {
        let now = Instant::now();
        let clock = ManualClock::new();
        let b = Budget::until_with_clock(now + Duration::from_millis(10), now, usize::MAX, clock.clock());
        assert!(b.try_consume(), "inside the deadline window");
        clock.advance(Duration::from_millis(11));
        assert!(b.exhausted(), "manual clock must drive deadline expiry");
        assert!(!b.try_consume());
        assert_eq!(b.evals_used(), 1);
    }

    #[test]
    fn search_result_tracks_best() {
        let mut r = SearchResult::empty();
        r.observe(&[true, false], 2.0);
        r.observe(&[false, true], 1.0);
        r.observe(&[true, true], 3.0);
        assert_eq!(r.best_bits, vec![false, true]);
        assert_eq!(r.best_score, 1.0);
        assert_eq!(r.evaluations, 3);
    }

    #[test]
    fn hit_target_logic() {
        assert!(hit_target(0.0, Some(0.0)));
        assert!(hit_target(-1.0, Some(0.0)));
        assert!(!hit_target(0.1, Some(0.0)));
        assert!(!hit_target(0.0, None));
        assert!(!hit_target(f64::NAN, Some(0.0)), "NaN must never satisfy a target");
        assert!(!hit_target(f64::NAN, Some(f64::INFINITY)));
    }

    #[test]
    fn nan_first_score_counts_but_never_becomes_best() {
        dfs_obs::set_trace_enabled(true);
        let (r, collected) = dfs_obs::scoped(|| {
            let mut r = SearchResult::empty();
            r.observe(&[true, false], f64::NAN);
            assert_eq!(r.evaluations, 1, "a NaN evaluation still consumed budget");
            assert!(r.best_bits.is_empty(), "NaN must not be promoted to best");
            assert_eq!(r.best_score, f64::INFINITY);
            r.observe(&[false, true], 5.0);
            r
        });
        assert_eq!(r.best_bits, vec![false, true]);
        assert_eq!(r.best_score, 5.0);
        assert_eq!(r.evaluations, 2);
        let collected = collected.expect("collector");
        assert_eq!(collected.counters().get("search.nan_score").copied(), Some(1));
        assert!(
            collected.events().iter().any(|e| format!("{e:?}").contains("NaN score")),
            "NaN observation must leave a journal line"
        );
    }

    #[test]
    fn nan_mid_sequence_leaves_the_incumbent_untouched() {
        let mut r = SearchResult::empty();
        r.observe(&[true, false], 2.0);
        r.observe(&[false, true], f64::NAN);
        r.observe(&[true, true], 3.0);
        assert_eq!(r.best_bits, vec![true, false]);
        assert_eq!(r.best_score, 2.0);
        assert_eq!(r.evaluations, 3);
    }
}
