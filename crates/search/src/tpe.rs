//! Tree-structured Parzen estimator (Bergstra et al., 2011).
//!
//! TPE models `P(x | y < y*)` ("good" observations, the best γ-quantile) and
//! `P(x | y ≥ y*)` ("bad") and proposes the candidate maximizing the density
//! ratio `l(x)/g(x)` — a proxy for expected improvement. Two search spaces
//! are supported, matching the paper's usage:
//!
//! - [`tpe_binary`] over binary feature-decision vectors (TPE(NR)): one
//!   Bernoulli Parzen estimator per dimension;
//! - [`tpe_integer`] over a bounded integer (the top-`k` cutoff used by all
//!   ranking-based strategies): Gaussian kernel density over observed `k`s.

use crate::{hit_target, SearchResult};
use dfs_linalg::rng::{rng_from_seed, uniform};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// TPE configuration shared by both search spaces.
#[derive(Debug, Clone)]
pub struct TpeConfig {
    /// Total evaluations (including the random start-up phase).
    pub max_iters: usize,
    /// Random evaluations before the Parzen model kicks in.
    pub n_startup: usize,
    /// Candidates sampled from `l` per iteration.
    pub n_candidates: usize,
    /// Fraction of observations labeled "good".
    pub gamma: f64,
    /// Early-stop score.
    pub stop_at: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        Self { max_iters: 150, n_startup: 12, n_candidates: 24, gamma: 0.25, stop_at: Some(0.0), seed: 0 }
    }
}

/// Minimizes `eval` over `{0,1}^d` with TPE.
pub fn tpe_binary(
    d: usize,
    eval: &mut dyn FnMut(&[bool]) -> Option<f64>,
    cfg: &TpeConfig,
) -> SearchResult {
    let mut result = SearchResult::empty();
    if d == 0 {
        return result;
    }
    let mut rng = rng_from_seed(cfg.seed);
    let mut history: Vec<(Vec<bool>, f64)> = Vec::new();
    let mut seen: HashSet<Vec<bool>> = HashSet::new();

    for iter in 0..cfg.max_iters {
        let _iter_span = dfs_obs::span("tpe.iter");
        let candidate = if iter < cfg.n_startup || history.len() < 4 {
            random_nonempty(d, &mut rng)
        } else {
            propose_binary(d, &history, cfg, &mut seen, &mut rng)
        };
        if !seen.insert(candidate.clone()) && iter >= cfg.n_startup {
            // Exact duplicate slipped through; perturb one bit.
            let mut c = candidate.clone();
            let j = rng.random_range(0..d);
            c[j] = !c[j];
            if c.iter().any(|&b| b) {
                seen.insert(c.clone());
                let Some(score) = eval(&c) else { break };
                result.observe(&c, score);
                history.push((c, score));
                if hit_target(score, cfg.stop_at) {
                    result.reached_target = true;
                    break;
                }
                continue;
            }
        }
        let Some(score) = eval(&candidate) else { break };
        result.observe(&candidate, score);
        history.push((candidate, score));
        if hit_target(score, cfg.stop_at) {
            result.reached_target = true;
            break;
        }
    }
    result
}

fn random_nonempty(d: usize, rng: &mut StdRng) -> Vec<bool> {
    loop {
        let bits: Vec<bool> = (0..d).map(|_| rng.random::<bool>()).collect();
        if bits.iter().any(|&b| b) {
            return bits;
        }
    }
}

/// Splits history into good/bad by the γ-quantile and proposes the candidate
/// with the best Bernoulli density ratio among `n_candidates` draws from `l`.
fn propose_binary(
    d: usize,
    history: &[(Vec<bool>, f64)],
    cfg: &TpeConfig,
    seen: &HashSet<Vec<bool>>,
    rng: &mut StdRng,
) -> Vec<bool> {
    let mut order: Vec<usize> = (0..history.len()).collect();
    // NaN scores are mapped to +inf at measurement, so Equal is an
    // unreachable fallback, not a behavior change.
    order.sort_by(|&a, &b| {
        history[a].1.partial_cmp(&history[b].1).unwrap_or(std::cmp::Ordering::Equal)
    });
    let n_good = ((cfg.gamma * history.len() as f64).ceil() as usize).clamp(1, history.len() - 1);

    // Per-dimension Bernoulli parameters with a Beta(1,1) prior.
    let mut p_good = vec![0.0f64; d];
    let mut p_bad = vec![0.0f64; d];
    for (rank, &i) in order.iter().enumerate() {
        let target = if rank < n_good { &mut p_good } else { &mut p_bad };
        for (t, &b) in target.iter_mut().zip(&history[i].0) {
            if b {
                *t += 1.0;
            }
        }
    }
    let n_bad = history.len() - n_good;
    for j in 0..d {
        p_good[j] = (p_good[j] + 1.0) / (n_good as f64 + 2.0);
        p_bad[j] = (p_bad[j] + 1.0) / (n_bad as f64 + 2.0);
    }

    let mut best: Option<(f64, Vec<bool>)> = None;
    for _ in 0..cfg.n_candidates {
        let bits: Vec<bool> = (0..d).map(|j| rng.random::<f64>() < p_good[j]).collect();
        if !bits.iter().any(|&b| b) {
            continue;
        }
        if seen.contains(&bits) {
            continue;
        }
        let mut log_ratio = 0.0;
        for j in 0..d {
            let (pg, pb) = if bits[j] { (p_good[j], p_bad[j]) } else { (1.0 - p_good[j], 1.0 - p_bad[j]) };
            log_ratio += pg.max(1e-12).ln() - pb.max(1e-12).ln();
        }
        if best.as_ref().map(|(s, _)| log_ratio > *s).unwrap_or(true) {
            best = Some((log_ratio, bits));
        }
    }
    best.map(|(_, bits)| bits).unwrap_or_else(|| random_nonempty(d, rng))
}

/// Outcome of an integer-space TPE search.
#[derive(Debug, Clone)]
pub struct IntSearchResult {
    /// Best integer found.
    pub best_value: usize,
    /// Its score.
    pub best_score: f64,
    /// Evaluations performed.
    pub evaluations: usize,
    /// `true` when `stop_at` was reached.
    pub reached_target: bool,
}

/// Minimizes `eval` over the integer range `[lo, hi]` with TPE
/// (the top-`k` search used by every ranking-based strategy).
pub fn tpe_integer(
    lo: usize,
    hi: usize,
    eval: &mut dyn FnMut(usize) -> Option<f64>,
    cfg: &TpeConfig,
) -> IntSearchResult {
    assert!(lo <= hi, "tpe_integer: empty range");
    let mut result =
        IntSearchResult { best_value: lo, best_score: f64::INFINITY, evaluations: 0, reached_target: false };
    let mut rng = rng_from_seed(cfg.seed);
    let mut history: Vec<(usize, f64)> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let span = hi - lo + 1;

    for iter in 0..cfg.max_iters {
        let _iter_span = dfs_obs::span("tpe.iter");
        if seen.len() == span {
            break; // exhausted the whole domain
        }
        let k = if iter < cfg.n_startup || history.len() < 4 {
            // Stratified random start-up: spread over the range.
            fresh_random(lo, hi, &seen, &mut rng)
        } else {
            propose_integer(lo, hi, &history, cfg, &seen, &mut rng)
        };
        seen.insert(k);
        let Some(score) = eval(k) else { break };
        result.evaluations += 1;
        if score < result.best_score {
            result.best_score = score;
            result.best_value = k;
        }
        history.push((k, score));
        if hit_target(score, cfg.stop_at) {
            result.reached_target = true;
            break;
        }
    }
    result
}

fn fresh_random(lo: usize, hi: usize, seen: &HashSet<usize>, rng: &mut StdRng) -> usize {
    for _ in 0..64 {
        let k = rng.random_range(lo..=hi);
        if !seen.contains(&k) {
            return k;
        }
    }
    // Fall back to a linear scan for the first unseen value.
    (lo..=hi).find(|k| !seen.contains(k)).unwrap_or(lo)
}

fn propose_integer(
    lo: usize,
    hi: usize,
    history: &[(usize, f64)],
    cfg: &TpeConfig,
    seen: &HashSet<usize>,
    rng: &mut StdRng,
) -> usize {
    let mut order: Vec<usize> = (0..history.len()).collect();
    // NaN scores are mapped to +inf at measurement, so Equal is an
    // unreachable fallback, not a behavior change.
    order.sort_by(|&a, &b| {
        history[a].1.partial_cmp(&history[b].1).unwrap_or(std::cmp::Ordering::Equal)
    });
    let n_good = ((cfg.gamma * history.len() as f64).ceil() as usize).clamp(1, history.len() - 1);
    let good: Vec<f64> = order[..n_good].iter().map(|&i| history[i].0 as f64).collect();
    let bad: Vec<f64> = order[n_good..].iter().map(|&i| history[i].0 as f64).collect();
    let bandwidth = ((hi - lo) as f64 / 8.0).max(1.0);

    let kde = |xs: &[f64], v: f64| -> f64 {
        if xs.is_empty() {
            return 1.0 / (hi - lo + 1) as f64;
        }
        let mut total = 0.0;
        for &x in xs {
            let z = (v - x) / bandwidth;
            total += (-0.5 * z * z).exp();
        }
        (total / xs.len() as f64).max(1e-12)
    };

    let mut best: Option<(f64, usize)> = None;
    for _ in 0..cfg.n_candidates {
        // Sample from l: pick a good center and jitter.
        let center = good[rng.random_range(0..good.len())];
        let v = (center + uniform(-bandwidth, bandwidth, rng)).round();
        let k = (v.max(lo as f64).min(hi as f64)) as usize;
        if seen.contains(&k) {
            continue;
        }
        let ratio = kde(&good, k as f64) / kde(&bad, k as f64);
        if best.as_ref().map(|(r, _)| ratio > *r).unwrap_or(true) {
            best = Some((ratio, k));
        }
    }
    best.map(|(_, k)| k).unwrap_or_else(|| fresh_random(lo, hi, seen, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tpe_finds_sparse_pattern() {
        // Objective: distance to a 3-hot pattern in 12 dims.
        let target: Vec<bool> = (0..12).map(|i| i % 4 == 0).collect();
        let mut eval = |bits: &[bool]| {
            Some(bits.iter().zip(&target).filter(|(a, b)| a != b).count() as f64)
        };
        let cfg = TpeConfig { max_iters: 400, seed: 2, ..Default::default() };
        let r = tpe_binary(12, &mut eval, &cfg);
        assert!(r.best_score <= 1.0, "best score {}", r.best_score);
    }

    #[test]
    fn binary_tpe_beats_pure_random_on_average() {
        let target: Vec<bool> = (0..14).map(|i| i < 4).collect();
        let score_of = |seed: u64, smart: bool| -> f64 {
            let mut eval = |bits: &[bool]| {
                Some(bits.iter().zip(&target).filter(|(a, b)| a != b).count() as f64)
            };
            let cfg = TpeConfig {
                max_iters: 60,
                n_startup: if smart { 10 } else { 60 }, // startup-only = random search
                stop_at: None,
                seed,
                ..Default::default()
            };
            tpe_binary(14, &mut eval, &cfg).best_score
        };
        let tpe_avg: f64 = (0..6).map(|s| score_of(s, true)).sum::<f64>() / 6.0;
        let rnd_avg: f64 = (0..6).map(|s| score_of(s, false)).sum::<f64>() / 6.0;
        assert!(tpe_avg <= rnd_avg, "tpe {tpe_avg} vs random {rnd_avg}");
    }

    #[test]
    fn binary_tpe_stops_at_target_and_respects_budget() {
        let mut eval = |_: &[bool]| Some(0.0);
        let r = tpe_binary(5, &mut eval, &TpeConfig::default());
        assert!(r.reached_target);
        assert_eq!(r.evaluations, 1);

        let mut calls = 0;
        let mut limited = |bits: &[bool]| {
            calls += 1;
            if calls > 7 {
                None
            } else {
                Some(bits.len() as f64)
            }
        };
        let cfg = TpeConfig { stop_at: Some(0.0), ..Default::default() };
        let r = tpe_binary(5, &mut limited, &cfg);
        assert_eq!(r.evaluations, 7);
    }

    #[test]
    fn integer_tpe_minimizes_quadratic() {
        let mut eval = |k: usize| Some((k as f64 - 17.0).powi(2));
        let cfg = TpeConfig { max_iters: 60, stop_at: None, seed: 4, ..Default::default() };
        let r = tpe_integer(1, 60, &mut eval, &cfg);
        assert!((r.best_value as i64 - 17).abs() <= 2, "best {}", r.best_value);
    }

    #[test]
    fn integer_tpe_exhausts_small_domains() {
        let mut evals = Vec::new();
        let mut eval = |k: usize| {
            evals.push(k);
            Some(k as f64)
        };
        let cfg = TpeConfig { max_iters: 100, stop_at: None, ..Default::default() };
        let r = tpe_integer(3, 6, &mut eval, &cfg);
        assert_eq!(r.best_value, 3);
        let mut sorted = evals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![3, 4, 5, 6], "domain must be covered without repeats");
    }

    #[test]
    fn integer_tpe_stops_at_target() {
        let mut eval = |k: usize| Some(if k == 5 { 0.0 } else { 1.0 });
        let cfg = TpeConfig { max_iters: 200, seed: 1, ..Default::default() };
        let r = tpe_integer(1, 10, &mut eval, &cfg);
        assert!(r.reached_target);
        assert_eq!(r.best_value, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut eval = |bits: &[bool]| {
                Some(bits.iter().enumerate().map(|(i, &b)| if b { i as f64 } else { 0.0 }).sum())
            };
            let cfg = TpeConfig { max_iters: 30, stop_at: None, seed, ..Default::default() };
            tpe_binary(8, &mut eval, &cfg).best_bits
        };
        assert_eq!(run(9), run(9));
    }
}
