//! Offline stand-in for `proptest` implementing exactly the surface this
//! workspace's property tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range and tuple strategies, `prop_map`, and the
//! `prop::{collection::vec, option::of, sample::select}` combinators plus
//! `any::<bool>()`.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a fixed per-test seed (derived from the test name) so offline
//! runs are reproducible, and failing cases are reported without shrinking.
//! Networked builds use the real crate and keep full shrinking behaviour.

/// Deterministic generator the stub samples from (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
        let _ = rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A source of values of one type; the stub's notion of `proptest::Strategy`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($t:ty) => {
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    };
}
int_strategy!(usize);
int_strategy!(u64);
int_strategy!(u32);
int_strategy!(i32);
int_strategy!(i64);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Always-this-value strategy (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size bound for [`vec`]: exact length or a half-open range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)` — vector of sampled elements.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same None-bias as real proptest's default (1 in 4).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `prop::option::of(strategy)` — sometimes-`None` wrapper.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Output of [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// `prop::sample::select(items)` — uniform choice from a non-empty list.
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        let items = items.into();
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// `prop_assume!` rejected the inputs; resample and retry.
    Reject,
    /// `prop_assert!`-family failure; aborts the test.
    Fail(String),
}

/// Drives one property: samples inputs and runs the body until `cases`
/// accepted executions, panicking on the first failed assertion. Rejection
/// via `prop_assume!` retries with fresh inputs, up to a 20x attempt cap.
pub fn run_property<F>(config: &test_runner::Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), CaseError>,
{
    // Stable per-test seed: offline failures reproduce exactly.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::from_seed(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= config.cases.saturating_mul(20).max(64),
            "{name}: too many cases rejected by prop_assume!"
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(CaseError::Reject) => {}
            Err(CaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} passing cases: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_property(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for the names this workspace imports.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}
