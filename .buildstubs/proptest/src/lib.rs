//! Offline resolution stand-in for `proptest`. This exists only so cargo
//! can resolve the dependency graph without a network; test targets that
//! `use proptest::...` will NOT compile against it. Run property tests in an
//! environment with the real registry available.
