//! Offline resolution stand-in for `criterion`. Only `micro_components`
//! uses criterion (all other bench targets are `harness = false` mains with
//! no criterion dependency); run it in an environment with the real
//! registry available.
