//! Offline stand-in for `rand` 0.9 covering exactly the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `random::<f64/bool>()`,
//! `random_range` over float/integer ranges, and slice `shuffle`.
//!
//! The generator is SplitMix64 — statistically fine for the workspace's
//! sampling needs, deterministic per seed, but NOT the real `StdRng`
//! (ChaCha12): sequences differ from builds against the real crate.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            // Mix the seed once so small seeds don't start correlated.
            let mut s = Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
            let _ = s.next_u64();
            s
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn random<T: Standard>(&mut self) -> T {
            T::sample(self)
        }

        pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Out {
            range.sample(self)
        }

        pub fn random_bool(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }

    /// Types drawable via `rng.random::<T>()`.
    pub trait Standard: Sized {
        fn sample(rng: &mut StdRng) -> Self;
    }

    impl Standard for f64 {
        fn sample(rng: &mut StdRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Standard for bool {
        fn sample(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample(rng: &mut StdRng) -> u64 {
            rng.next_u64()
        }
    }

    /// Ranges drawable via `rng.random_range(range)`.
    pub trait SampleRange {
        type Out;
        fn sample(self, rng: &mut StdRng) -> Self::Out;
    }

    impl SampleRange for std::ops::Range<f64> {
        type Out = f64;
        fn sample(self, rng: &mut StdRng) -> f64 {
            assert!(self.start < self.end, "random_range: empty f64 range");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! int_range {
        ($t:ty) => {
            impl SampleRange for std::ops::Range<$t> {
                type Out = $t;
                fn sample(self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "random_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange for std::ops::RangeInclusive<$t> {
                type Out = $t;
                fn sample(self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "random_range: empty inclusive range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        };
    }
    int_range!(usize);
    int_range!(u64);
    int_range!(u32);
    int_range!(i32);
    int_range!(i64);
}

/// Marker trait kept so `use rand::Rng;` imports resolve; the methods
/// themselves are inherent on [`rngs::StdRng`].
pub trait Rng {}
impl Rng for rngs::StdRng {}

/// Marker trait kept so `use rand::SeedableRng;` imports resolve.
pub trait SeedableRng {}
impl SeedableRng for rngs::StdRng {}

pub mod seq {
    use super::rngs::StdRng;

    /// Slice shuffling (Fisher–Yates), as `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}
