//! Offline stand-in for `rand` 0.9 covering exactly the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `random::<f64/bool>()`,
//! `random_range` over float/integer ranges, and slice `shuffle`.
//!
//! The generator is SplitMix64 — statistically fine for the workspace's
//! sampling needs, deterministic per seed, but NOT the real `StdRng`
//! (ChaCha12): sequences differ from builds against the real crate.
//!
//! Like the real crate, the sampling methods live on the [`Rng`] and
//! [`SeedableRng`] *traits*, not inherently on `StdRng` — so every
//! `use rand::Rng;` in the workspace is a genuinely used import under both
//! the stub and the real dependency, and the stub build stays warning-free.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// SplitMix64 step; the single source of bits for every sampler.
        pub(crate) fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The sampling trait, mirroring the shape of `rand::Rng`: all drawing
/// methods resolve through this trait, so call sites must import it.
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a value of a supported type (`f64`, `bool`, `u64`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a float/integer range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Out
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// Seeding trait, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Mix the seed once so small seeds don't start correlated.
        let mut s = rngs::StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
        let _ = s.step();
        s
    }
}

/// Types drawable via `rng.random::<T>()`.
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges drawable via `rng.random_range(range)`.
pub trait SampleRange {
    type Out;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Out;
}

impl SampleRange for std::ops::Range<f64> {
    type Out = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange for std::ops::Range<$t> {
            type Out = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i32);
int_range!(i64);

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), as `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}
