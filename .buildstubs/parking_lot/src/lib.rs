//! Offline stand-in for `parking_lot` 0.12: `Mutex` backed by
//! `std::sync::Mutex` with poison recovery (parking_lot never poisons).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
