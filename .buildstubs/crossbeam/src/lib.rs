//! Offline stand-in for `crossbeam` 0.8 covering `crossbeam::scope`.
//!
//! `spawn` runs the closure IMMEDIATELY on the calling thread (sequential
//! execution). That preserves the semantics this workspace relies on —
//! every spawned task completes before `scope` returns, panics surface as
//! `Err` from `scope` — while avoiding a re-implementation of scoped
//! threads. Parallel speedup is absent under the stub; correctness is not.

pub struct Scope;

pub struct ScopedJoinHandle<T>(std::thread::Result<T>);

impl<T> ScopedJoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.0
    }
}

impl Scope {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
    where
        F: FnOnce(&Scope) -> T,
    {
        ScopedJoinHandle(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self))))
    }
}

/// Sequential `crossbeam::scope`: runs `f` with a scope whose `spawn`
/// executes inline; returns `Err` if `f` itself panics. Panics inside
/// spawned closures are captured in their `ScopedJoinHandle` (crossbeam
/// surfaces unjoined child panics through the scope result instead; callers
/// in this workspace treat both as a scope-level error).
pub fn scope<F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&Scope) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&Scope)))
}

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}
